"""Deterministic fault injection and the fault-tolerant sweep paths.

Exercises :mod:`repro.harness.faults` itself (plan semantics, the
env-var transport to pool workers) and the hardening it was built to
prove: retries with attempt accounting, quarantine after repeated
crashes, injected cache-write faults surfacing in ``SweepStats``, and
the ``chaos`` soak's end-to-end contract.
"""

import pytest

from repro.config import ExecPolicy
from repro.harness import faults as faultlib
from repro.harness import parallel
from repro.harness.parallel import RunSpec, cache_key, cache_path, run_specs

SPEC = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
OTHER = RunSpec(abbr="FWS", config_name="BASE", scale="tiny")


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


@pytest.fixture(autouse=True)
def no_leftover_plan():
    yield
    faultlib.uninstall()


def plan_with(*rules, hang_s=0.05):
    return faultlib.FaultPlan(rules=tuple(rules), hang_s=hang_s)


class TestFaultPlan:
    def test_rule_fires_on_listed_attempts_only(self):
        rule = faultlib.FaultRule(faultlib.TRANSIENT, "A/B@tiny", attempts=(1, 3))
        assert rule.fires("A/B@tiny", 1) and rule.fires("A/B@tiny", 3)
        assert not rule.fires("A/B@tiny", 2)
        assert not rule.fires("X/Y@tiny", 1)

    def test_empty_attempts_means_every_attempt(self):
        rule = faultlib.FaultRule(faultlib.CRASH, "A/B@tiny")
        assert all(rule.fires("A/B@tiny", n) for n in (1, 2, 7))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faultlib.FaultRule("meteor-strike", "A/B@tiny")

    def test_json_round_trip(self):
        plan = faultlib.random_plan(["A/B@tiny", "C/D@tiny", "E/F@tiny"], seed=3)
        clone = faultlib.FaultPlan.from_json(plan.to_json())
        assert clone == plan

    def test_random_plan_is_deterministic_and_order_insensitive(self):
        labels = ["A/B@tiny", "C/D@tiny", "E/F@tiny", "G/H@tiny"]
        a = faultlib.random_plan(labels, seed=7)
        b = faultlib.random_plan(list(reversed(labels)), seed=7)
        assert a == b
        assert faultlib.random_plan(labels, seed=8) != a
        # one distinct label per kind
        assigned = [r.label for r in a.rules]
        assert len(assigned) == len(set(assigned)) == min(len(labels), len(faultlib.KINDS))

    def test_env_transport_reaches_child_decoder(self, monkeypatch):
        plan = faultlib.random_plan(["A/B@tiny"], seed=0)
        with plan.active():
            # A forked worker has the env var but not the module global.
            monkeypatch.setattr(faultlib, "_active", None)
            assert faultlib.active_plan() == plan
        assert faultlib.active_plan() is None


class TestSerialFaultHandling:
    def test_transient_fault_is_retried_and_counted(self):
        plan = plan_with(
            faultlib.FaultRule(faultlib.TRANSIENT, SPEC.label, attempts=(1,))
        )
        policy = ExecPolicy(max_retries=2, backoff_base_s=0.0)
        with plan.active():
            outcomes, stats = run_specs([SPEC], use_cache=False, policy=policy)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert stats.retries == 1 and stats.failures == 0
        assert "1 retries" in stats.render()

    def test_permanent_fault_is_never_retried(self):
        plan = plan_with(faultlib.FaultRule(faultlib.PERMANENT, SPEC.label))
        policy = ExecPolicy(max_retries=5, backoff_base_s=0.0)
        with plan.active():
            outcomes, stats = run_specs([SPEC], use_cache=False, policy=policy)
        assert not outcomes[0].ok
        assert outcomes[0].error_type == "PermanentFault"
        assert outcomes[0].attempts == 1
        assert stats.retries == 0 and stats.failures == 1

    def test_repeated_crashes_quarantine_the_spec(self):
        plan = plan_with(faultlib.FaultRule(faultlib.CRASH, SPEC.label))
        policy = ExecPolicy(max_retries=5, backoff_base_s=0.0, quarantine_after=2)
        with plan.active():
            outcomes, stats = run_specs([SPEC, OTHER], use_cache=False, policy=policy)
        crashed, clean = outcomes
        assert not crashed.ok and crashed.quarantined
        assert crashed.error_type == "WorkerCrashed"  # serial stand-in for os._exit
        assert crashed.attempts == policy.quarantine_after
        assert clean.ok and not clean.quarantined
        assert stats.quarantined == [SPEC.label]
        assert "1 quarantined" in stats.render()
        assert SPEC.label in stats.detail()

    def test_injected_store_oserror_is_counted_and_warned(self, cache_dir):
        plan = plan_with(faultlib.FaultRule(faultlib.STORE_OSERROR, SPEC.label))
        with plan.active():
            with pytest.warns(RuntimeWarning, match="not writable"):
                outcomes, stats = run_specs(
                    [SPEC], use_cache=True, cache_dir=cache_dir
                )
        assert outcomes[0].ok
        assert stats.cache_write_failures == 1
        # Nothing was stored, so the next sweep re-simulates.
        outcomes2, stats2 = run_specs([SPEC], use_cache=True, cache_dir=cache_dir)
        assert not outcomes2[0].cache_hit and stats2.simulated == 1

    def test_injected_corruption_is_detected_on_next_read(self, cache_dir):
        plan = plan_with(faultlib.FaultRule(faultlib.CORRUPT_STORE, SPEC.label))
        with plan.active():
            outcomes, _ = run_specs([SPEC], use_cache=True, cache_dir=cache_dir)
        assert outcomes[0].ok
        path = cache_path(SPEC, cache_key(SPEC), cache_dir)
        with open(path, "rb") as fh:
            assert fh.read() == faultlib.CORRUPT_BYTES
        with pytest.warns(RuntimeWarning, match="corrupt"):
            outcomes2, stats2 = run_specs([SPEC], use_cache=True, cache_dir=cache_dir)
        assert outcomes2[0].ok and not outcomes2[0].cache_hit
        assert stats2.cache_read_failures == 1 and stats2.simulated == 1
        assert "1 corrupt cache reads" in stats2.render()


@pytest.mark.skipif(not parallel.supports_fork(), reason="needs fork start method")
class TestPoolFaultHandling:
    def test_hang_times_out_and_pool_recovers(self):
        hang = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
        plan = plan_with(
            faultlib.FaultRule(faultlib.HANG, hang.label), hang_s=30.0
        )
        policy = ExecPolicy(timeout_s=1.0, max_retries=0, backoff_base_s=0.0)
        with plan.active():
            outcomes, stats = run_specs(
                [hang, OTHER], jobs=2, use_cache=False, policy=policy
            )
        timed_out, clean = outcomes
        assert not timed_out.ok and timed_out.error_type == "Timeout"
        assert "wall-clock budget" in timed_out.error
        assert clean.ok
        assert stats.timeouts == 1 and stats.pool_restarts >= 1
        assert "1 timeouts" in stats.render()

    def test_chaos_soak_contract_holds(self):
        from repro.harness.chaos import chaos_soak

        report = chaos_soak(seed=0, jobs=2)
        assert report.ok, report.render()
        assert report.fault_stats.quarantined == report.plan.labels_for(faultlib.CRASH)
        assert report.fault_stats.pool_restarts >= 1
        assert report.resume_stats.journal_skips >= 1


class TestChaosSerial:
    def test_chaos_soak_serial_contract_holds(self):
        from repro.harness.chaos import chaos_soak

        report = chaos_soak(seed=1, jobs=1)
        assert report.ok, report.render()
        assert any("serially" in note for note in report.notes)
