"""CLI smoke tests for `python -m repro lint` and `python -m repro soundness`."""

import pytest

from repro.__main__ import main


class TestLintCommand:
    def test_lint_all_kernels_clean(self, capsys):
        assert main(["lint", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_lint_subset_positional(self, capsys):
        assert main(["lint", "MM,LIB", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "MM" in out and "LIB" in out
        assert "2 kernel(s)" in out

    def test_lint_strict_flag(self, capsys):
        assert main(["lint", "MM", "--scale", "tiny", "--strict"]) == 0
        assert "[strict]" in capsys.readouterr().out

    def test_lint_unknown_app_errors(self):
        with pytest.raises(SystemExit) as exc:
            main(["lint", "NOPE"])
        assert exc.value.code == 2


class TestSoundnessCommand:
    def test_soundness_subset(self, capsys):
        assert main(["soundness", "--apps", "MM", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "sound" in out

    def test_soundness_unknown_app_errors(self):
        with pytest.raises(SystemExit) as exc:
            main(["soundness", "--apps", "NOPE"])
        assert exc.value.code == 2
