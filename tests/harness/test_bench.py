"""The perf-regression bench layer: report schema, gate semantics, CLI."""

import json

import pytest

from repro.harness import bench
from repro.harness.bench import BenchEntry, BenchReport, compare, run_bench


def _entry(abbr, config, cycles, wall):
    return BenchEntry(abbr=abbr, config=config, cycles=cycles, wall_s=[wall, wall * 1.1])


def _report(entries, scale="tiny"):
    return BenchReport(
        scale=scale, repeats=2, fingerprint="f" * 64,
        entries={f"{e.abbr}/{e.config}": e for e in entries},
    )


class TestReportSchema:
    def test_roundtrip(self, tmp_path):
        report = _report([_entry("LIB", "BASE", 1000, 0.25),
                          _entry("LIB", "DARSIE", 900, 0.30)])
        path = str(tmp_path / "BENCH_timing.json")
        report.write(path)
        loaded = BenchReport.load(path)
        assert loaded.scale == "tiny" and loaded.repeats == 2
        assert set(loaded.entries) == {"LIB/BASE", "LIB/DARSIE"}
        e = loaded.entries["LIB/BASE"]
        assert e.cycles == 1000
        assert e.wall_s_min == pytest.approx(0.25, abs=1e-5)

    def test_schema_fields_present(self, tmp_path):
        report = _report([_entry("LIB", "BASE", 1000, 0.25)])
        path = str(tmp_path / "b.json")
        report.write(path)
        data = json.loads(open(path).read())
        assert data["schema"] == bench.BENCH_SCHEMA
        assert {"scale", "repeats", "fingerprint", "total_wall_s_min", "entries"} <= set(data)
        entry = data["entries"]["LIB/BASE"]
        assert {"cycles", "wall_s_min", "wall_s_median", "cycles_per_sec", "repeats"} <= set(entry)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "entries": {}}))
        with pytest.raises(ValueError, match="schema"):
            BenchReport.load(str(path))


class TestCompareGate:
    def test_ok_within_tolerance(self):
        base = _report([_entry("LIB", "BASE", 1000, 0.20)])
        cur = _report([_entry("LIB", "BASE", 1000, 0.30)])
        out = compare(cur, base, tolerance=2.0)
        assert out.ok and out.total_ratio == pytest.approx(1.5)
        assert "OK" in out.render(2.0)

    def test_regression_fails(self):
        base = _report([_entry("LIB", "BASE", 1000, 0.10)])
        cur = _report([_entry("LIB", "BASE", 1000, 0.50)])
        out = compare(cur, base, tolerance=2.0)
        assert not out.ok and out.regressions
        assert "FAIL" in out.render(2.0)

    def test_missing_entry_fails(self):
        base = _report([_entry("LIB", "BASE", 1000, 0.1),
                        _entry("LIB", "DARSIE", 900, 0.1)])
        cur = _report([_entry("LIB", "BASE", 1000, 0.1)])
        out = compare(cur, base)
        assert not out.ok and out.missing == ["LIB/DARSIE"]

    def test_cycle_mismatch_excluded_from_per_entry_gate(self):
        """An entry simulating different work is flagged, not gated."""
        base = _report([_entry("LIB", "BASE", 1000, 0.1),
                        _entry("LIB", "DARSIE", 900, 0.1)])
        cur = _report([_entry("LIB", "BASE", 1000, 0.1),
                       _entry("LIB", "DARSIE", 950, 9.9)])   # 99x but different cycles
        out = compare(cur, base, tolerance=2.0)
        assert out.cycle_mismatches == ["LIB/DARSIE"]
        assert not out.regressions
        assert not out.ok            # total ratio still catches it
        assert "different simulation" in out.render(2.0)

    def test_sub_noise_floor_entries_not_gated_per_entry(self):
        """A ~10ms entry blipping 3x is scheduler noise, not a
        regression; only the total ratio may gate it."""
        base = _report([_entry("LIB", "BASE", 1000, 0.010),   # below floor
                        _entry("MM", "BASE", 5000, 1.000)])
        cur = _report([_entry("LIB", "BASE", 1000, 0.030),    # 3x blip
                       _entry("MM", "BASE", 5000, 1.100)])
        out = compare(cur, base, tolerance=2.0)
        assert out.ok and not out.regressions
        assert out.worst_key == "MM/BASE"   # floor'd entry not the headline
        # ...but a floor'd entry ballooning enough still trips the total.
        cur2 = _report([_entry("LIB", "BASE", 1000, 3.0),
                        _entry("MM", "BASE", 5000, 1.0)])
        assert not compare(cur2, base, tolerance=2.0).ok

    def test_new_extra_entries_are_ignored(self):
        base = _report([_entry("LIB", "BASE", 1000, 0.1)])
        cur = _report([_entry("LIB", "BASE", 1000, 0.1),
                       _entry("FW", "BASE", 500, 0.2)])
        assert compare(cur, base).ok

    def test_retried_entries_excluded_from_per_entry_gate(self):
        """A timing taken while repeats were being retried (flaky CI
        worker) is suspect: flagged, not gated per-entry."""
        retried = _entry("LIB", "DARSIE", 900, 9.9)  # 99x, but retried
        retried.retries = 1
        base = _report([_entry("LIB", "BASE", 1000, 1.0),
                        _entry("LIB", "DARSIE", 900, 0.1)])
        cur = _report([_entry("LIB", "BASE", 1000, 1.0), retried])
        out = compare(cur, base, tolerance=2.0)
        assert out.retried == ["LIB/DARSIE"]
        assert not out.regressions
        assert not out.ok            # total ratio still catches the blowup
        assert "timings suspect" in out.render(2.0)

    def test_retries_survive_report_round_trip(self, tmp_path):
        entry = _entry("LIB", "BASE", 1000, 0.25)
        entry.retries = 2
        report = _report([entry, _entry("LIB", "DARSIE", 900, 0.30)])
        path = str(tmp_path / "b.json")
        report.write(path)
        loaded = BenchReport.load(path)
        assert loaded.entries["LIB/BASE"].retries == 2
        assert loaded.entries["LIB/DARSIE"].retries == 0
        # retries is elided from clean entries' JSON
        data = json.loads(open(path).read())
        assert "retries" in data["entries"]["LIB/BASE"]
        assert "retries" not in data["entries"]["LIB/DARSIE"]


class TestRunBench:
    def test_times_one_workload(self):
        report = run_bench(scale="tiny", abbrs=("LIB",),
                           configs=("BASE", "DARSIE"), repeats=2)
        assert set(report.entries) == {"LIB/BASE", "LIB/DARSIE"}
        for e in report.entries.values():
            assert e.cycles > 0
            assert len(e.wall_s) == 2 and all(t > 0 for t in e.wall_s)
            assert e.wall_s_min <= e.wall_s_median
        assert len(report.fingerprint) == 64
        assert "LIB/BASE" in report.render()

    def test_deterministic_cycles_across_repeats(self):
        """Repeats re-time the same simulation; cycles must agree with a
        fresh bench run's."""
        a = run_bench(scale="tiny", abbrs=("FW",), configs=("BASE",), repeats=1)
        b = run_bench(scale="tiny", abbrs=("FW",), configs=("BASE",), repeats=2)
        assert a.entries["FW/BASE"].cycles == b.entries["FW/BASE"].cycles

    def test_flaky_simulate_is_retried_within_budget(self, monkeypatch):
        real_simulate = bench.simulate
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConnectionResetError("injected flake")
            return real_simulate(*args, **kwargs)

        monkeypatch.setattr(bench, "simulate", flaky)
        report = run_bench(scale="tiny", abbrs=("LIB",), configs=("BASE",),
                           repeats=2, max_retries=1)
        entry = report.entries["LIB/BASE"]
        assert entry.retries == 1
        assert len(entry.wall_s) == 2 and entry.cycles > 0

    def test_retry_budget_exhaustion_propagates(self, monkeypatch):
        def always_broken(*args, **kwargs):
            raise ConnectionResetError("injected flake")

        monkeypatch.setattr(bench, "simulate", always_broken)
        with pytest.raises(ConnectionResetError):
            run_bench(scale="tiny", abbrs=("LIB",), configs=("BASE",),
                      repeats=1, max_retries=2)


class TestCLI:
    def test_bench_subcommand_writes_report_and_gates(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "BENCH_timing.json")
        assert main(["bench", "LIB", "--scale", "tiny",
                     "--repeats", "1", "--out", out]) == 0
        report = BenchReport.load(out)
        assert "LIB/BASE" in report.entries
        # Gate against itself: trivially within tolerance.
        assert main(["bench", "LIB", "--scale", "tiny", "--repeats", "1",
                     "--out", out, "--baseline", out]) == 0
        assert "bench gate: OK" in capsys.readouterr().out

    def test_bench_gate_failure_exit_code(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "cur.json")
        assert main(["bench", "LIB", "--scale", "tiny",
                     "--repeats", "1", "--out", out]) == 0
        # Doctor a baseline that makes the current run look 100x slower.
        data = json.loads(open(out).read())
        for entry in data["entries"].values():
            entry["wall_s_min"] = entry["wall_s_min"] / 100.0
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(data))
        rc = main(["bench", "LIB", "--scale", "tiny", "--repeats", "1",
                   "--out", out, "--baseline", str(baseline)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
