"""Experiment drivers produce well-formed, shape-correct results.

These run at ``tiny`` scale over a subset of workloads — fast sanity
checks; the full reproduction lives in ``benchmarks/``.
"""

import pytest

from repro.harness import experiments
from repro.harness.runner import clear_runner_cache

SUBSET = ("LIB", "CONVTEX", "FWS")


@pytest.fixture(autouse=True, scope="module")
def fresh_cache():
    clear_runner_cache()
    yield
    clear_runner_cache()


class TestFunctionalStudies:
    def test_figure1_fractions_valid(self):
        r = experiments.figure1(scale="tiny", abbrs=SUBSET)
        for b in r.per_workload.values():
            for v in b.as_dict().values():
                assert 0.0 <= v <= 1.0
        assert "Figure 1" in r.render()

    def test_figure2_sums_to_one(self):
        r = experiments.figure2(scale="tiny", abbrs=SUBSET)
        for b in r.per_workload.values():
            total = b.uniform + b.affine + b.unstructured + b.non_redundant
            assert total == pytest.approx(1.0)

    def test_figure6_listing(self):
        r = experiments.figure6(scale="tiny")
        assert "CR" in r.listing and r.counts["V"] > 0


class TestTimingStudies:
    def test_figure8_subset(self):
        r = experiments.figure8(scale="tiny", abbrs=SUBSET)
        for vals in r.per_workload.values():
            assert vals["BASE"] == pytest.approx(1.0)
            assert all(v > 0 for v in vals.values())
        assert "GMEAN" in r.render()

    def test_figure11_subset(self):
        r = experiments.figure11(scale="tiny", abbrs=SUBSET)
        for vals in r.per_workload.values():
            for v in vals.values():
                assert v < 1.0  # a reduction, not a ratio

    def test_figure12_subset(self):
        r = experiments.figure12(scale="tiny", abbrs=SUBSET)
        for vals in r.per_workload.values():
            assert set(vals) == set(experiments.FIG12_CONFIGS)

    def test_empty_dimension_group_yields_empty_gmean(self):
        """Regression: geomean raises on an empty sequence; a sweep over
        only-1D apps must return an empty 2D GMEAN row, not crash."""
        r = experiments.figure8(scale="tiny", abbrs=("LIB",))
        assert r.gmean_2d == {}
        assert r.gmean_1d and all(v > 0 for v in r.gmean_1d.values())
        assert "GMEAN-1D" in r.render() and "GMEAN-2D" not in r.render()

    def test_gmean_values_always_positive(self):
        """Regression: the gm() call sites skip (and warn on) degenerate
        non-positive members, so the geomean precondition can never be
        violated by a degenerate run."""
        r = experiments.figure8(scale="tiny", abbrs=SUBSET)
        for row in (r.gmean_1d, r.gmean_2d):
            for v in row.values():
                assert v > 0


class TestStaticArtifacts:
    def test_tables_render(self):
        assert "binomialOptions" in experiments.table1()
        assert "GTO" in experiments.table2()
        assert "DARSIE" in experiments.table3()
        assert "5.31" in experiments.area_estimate()

    def test_survey(self):
        s = experiments.survey()
        assert s.num_applications == 133


class TestAblations:
    def test_skip_ports_ablation(self):
        r = experiments.ablation_skip_ports(abbr="CONVTEX", scale="tiny", ports=(1, 2))
        assert len(r.points) == 2
        assert "Ablation" in r.render()
