"""Tests for the `python -m repro run` subcommand."""

import json

import pytest

from repro.__main__ import main


class TestRunSubcommand:
    def test_run_base(self, capsys):
        assert main(["run", "CONVTEX", "--scale", "tiny", "--config", "BASE"]) == 0
        out = capsys.readouterr().out
        assert "CONVTEX [tiny] under BASE" in out
        assert "speedup 1.00x" in out

    def test_run_darsie_with_json(self, capsys):
        assert main(["run", "HS", "--scale", "tiny", "--config", "DARSIE", "--json"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        data = json.loads(payload)
        assert data["frontend"] == "DARSIE"
        assert data["cycles"] > 0

    def test_run_with_trace(self, capsys):
        assert main(["run", "HS", "--scale", "tiny", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "pipeline trace" in out

    def test_run_requires_known_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "BOGUS"])

    def test_run_case_insensitive(self, capsys):
        assert main(["run", "hs", "--scale", "tiny", "--config", "UV"]) == 0
        assert "under UV" in capsys.readouterr().out
