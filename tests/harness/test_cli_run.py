"""Tests for the `python -m repro run` subcommand."""

import json

import pytest

from repro.__main__ import main


class TestRunSubcommand:
    def test_run_base(self, capsys):
        assert main(["run", "CONVTEX", "--scale", "tiny", "--config", "BASE"]) == 0
        out = capsys.readouterr().out
        assert "CONVTEX [tiny] under BASE" in out
        assert "speedup 1.00x" in out

    def test_run_darsie_with_json(self, capsys):
        assert main(["run", "HS", "--scale", "tiny", "--config", "DARSIE", "--json"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{"):]
        data = json.loads(payload)
        assert data["frontend"] == "DARSIE"
        assert data["cycles"] > 0

    def test_run_with_trace(self, capsys):
        assert main(["run", "HS", "--scale", "tiny", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "pipeline trace" in out

    def test_run_requires_known_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "BOGUS"])

    def test_run_case_insensitive(self, capsys):
        assert main(["run", "hs", "--scale", "tiny", "--config", "UV"]) == 0
        assert "under UV" in capsys.readouterr().out

    def test_run_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--scale", "tiny", "--config", "DARSIE-TURBO"])


class TestSetOverrides:
    def test_run_with_darsie_override(self, capsys):
        assert main(["run", "MM", "--scale", "tiny", "--config", "DARSIE",
                     "--set", "darsie.skip_ports=4", "--no-cache"]) == 0
        assert "under DARSIE" in capsys.readouterr().out

    def test_run_override_can_switch_scale(self, capsys):
        assert main(["run", "MM", "--config", "BASE",
                     "--set", "scale=tiny", "--no-cache"]) == 0
        assert "MM [tiny]" in capsys.readouterr().out

    def test_experiment_with_gpu_override(self, capsys):
        assert main(["figure8", "--scale", "tiny", "--apps", "MM",
                     "--set", "gpu.l1_lines=512", "--no-cache"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_experiment_rejects_non_gpu_override(self):
        with pytest.raises(SystemExit):
            main(["figure8", "--scale", "tiny", "--apps", "MM",
                  "--set", "darsie.skip_ports=4"])

    def test_functional_experiment_rejects_gpu_override(self):
        # figure1 is a functional study: no gpu_config parameter to pass to
        with pytest.raises(SystemExit):
            main(["figure1", "--scale", "tiny", "--apps", "MM",
                  "--set", "gpu.l1_lines=512"])

    def test_bad_override_path_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--scale", "tiny", "--set", "gpu.l1_linez=4"])

    def test_malformed_override_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--scale", "tiny", "--set", "gpu.l1_lines"])


class TestSweepSubcommand:
    def test_sweep_darsie_field(self, capsys):
        assert main(["sweep", "darsie.skip_ports", "--values", "1,8",
                     "--apps", "MM", "--scale", "tiny", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "darsie.skip_ports" in out and "speedup" in out

    def test_sweep_gpu_field_rebases_per_point(self, capsys):
        assert main(["sweep", "gpu.l1_lines", "--values", "64,512",
                     "--apps", "MM", "--scale", "tiny", "--no-cache"]) == 0
        assert "gpu.l1_lines" in capsys.readouterr().out

    def test_sweep_needs_values(self):
        with pytest.raises(SystemExit):
            main(["sweep", "darsie.skip_ports"])

    def test_sweep_rejects_unknown_field(self):
        with pytest.raises(SystemExit):
            main(["sweep", "darsie.warp_speed", "--values", "1,2"])


class TestConfigCheckSubcommand:
    def test_committed_artifacts_validate(self, capsys):
        assert main(["config-check"]) == 0
        out = capsys.readouterr().out
        assert "config-check: OK" in out
        assert "BENCH_baseline_tiny.json" in out
        assert "golden_tiny.json" in out

    def test_list_shows_experiments_and_variants(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out and "DARSIE-SYNC-ON-WRITE" in out
