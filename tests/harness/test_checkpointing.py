"""Sweep-layer checkpointing: kill → resume → bit-identical.

The timing-layer tests prove a checkpointed GPU resumes exactly; this
file proves the *harness* plumbing around it — retries resuming from
the newest valid checkpoint, the SweepStats counters, superseded-file
GC, journal hardening, and the deadlock-dump failure artifact.
"""

import glob
import json
import os
import time
import warnings

import pytest

from repro.config import ExecPolicy
from repro.harness import faults as faultlib
from repro.harness import parallel
from repro.harness.parallel import (
    RunSpec,
    SweepStats,
    append_journal,
    cache_key,
    checkpoint_path,
    load_journal,
    run_specs,
)

SPEC = RunSpec(abbr="LIB", config_name="DARSIE", scale="tiny")

CKPT_POLICY = ExecPolicy(
    max_retries=2,
    backoff_base_s=0.0,
    checkpoint_interval_cycles=64,
)


def find_ckpts(directory):
    return glob.glob(os.path.join(directory, "**", "*.ckpt"), recursive=True)


class TestKillResume:
    def test_sim_kill_resumes_bit_identical(self, tmp_path):
        """A worker killed right after its first checkpoint write is
        retried, resumes from that checkpoint, and lands the same bits
        as an undisturbed run."""
        (clean,), _ = run_specs([SPEC], jobs=1, use_cache=False)
        assert clean.ok and clean.checkpoints_written == 0

        plan = faultlib.FaultPlan(rules=(
            faultlib.FaultRule(faultlib.SIM_KILL, SPEC.label, attempts=(1,)),
        ))
        with plan.active():
            (out,), stats = run_specs(
                [SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path),
                policy=CKPT_POLICY,
            )
        assert out.ok and out.attempts == 2
        assert out.checkpoint_resumed
        assert out.checkpoints_written >= 1
        assert stats.checkpoint_resumes == 1
        assert stats.checkpoints_written >= 2  # attempt 1's write + resumes
        assert out.result.cycles == clean.result.cycles
        assert out.result.energy_pj == clean.result.energy_pj
        assert out.result.sim.stats == clean.result.sim.stats

    def test_landed_result_prunes_its_checkpoint(self, tmp_path):
        plan = faultlib.FaultPlan(rules=(
            faultlib.FaultRule(faultlib.SIM_KILL, SPEC.label, attempts=(1,)),
        ))
        with plan.active():
            (out,), _ = run_specs(
                [SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path),
                policy=CKPT_POLICY,
            )
        assert out.ok
        assert find_ckpts(str(tmp_path)) == []  # superseded and reaped

    def test_failed_spec_keeps_checkpoint_for_forensics(self, tmp_path):
        """A spec that never lands keeps its newest checkpoint on disk —
        it is the resume point for the next sweep and a CI artifact."""
        plan = faultlib.FaultPlan(rules=(
            # every attempt: the retry budget runs out
            faultlib.FaultRule(faultlib.SIM_KILL, SPEC.label),
        ))
        policy = ExecPolicy(
            max_retries=1, backoff_base_s=0.0, quarantine_after=99,
            checkpoint_interval_cycles=64,
        )
        with plan.active():
            (out,), stats = run_specs(
                [SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path),
                policy=policy,
            )
        assert not out.ok
        assert out.checkpoints_written >= 1  # counted even on failure
        assert stats.checkpoints_written >= 1
        assert len(find_ckpts(str(tmp_path))) == 1

    def test_counters_quiet_without_checkpointing(self, tmp_path):
        (out,), stats = run_specs(
            [SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path),
        )
        assert out.ok
        assert stats.checkpoints_written == 0
        assert stats.checkpoint_resumes == 0
        assert "checkpoint" not in stats.render()
        assert find_ckpts(str(tmp_path)) == []


class TestDeadlockArtifact:
    def test_watchdog_failure_writes_dump_next_to_checkpoint(self, tmp_path):
        """A DeadlockError in the worker persists its diagnostic dump as
        ``<ckpt>.deadlock.json`` so CI can upload it on failure."""
        policy = ExecPolicy(max_cycles=50, checkpoint_interval_cycles=0)
        (out,), _ = run_specs(
            [SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path),
            policy=policy,
        )
        assert not out.ok and out.error_type == "DeadlockError"
        expected = checkpoint_path(SPEC, cache_key(SPEC), str(tmp_path))
        dump_path = f"{expected}.deadlock.json"
        assert os.path.exists(dump_path)
        payload = json.load(open(dump_path))
        assert payload["label"] == SPEC.label
        assert payload["dump"]["reason"] == "max_cycles"
        assert payload["dump"]["sms"][0]["warps"]  # per-warp detail intact

    def test_clear_cache_reaps_dumps_and_checkpoints(self, tmp_path):
        policy = ExecPolicy(max_cycles=50)
        run_specs([SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path),
                  policy=policy)
        leak = tmp_path / "stale.ckpt"
        leak.write_bytes(b"x")
        removed = parallel.clear_cache(str(tmp_path))
        assert removed >= 2  # the .deadlock.json + the stale .ckpt
        assert find_ckpts(str(tmp_path)) == []
        assert glob.glob(str(tmp_path / "**" / "*.deadlock.json"),
                         recursive=True) == []


class TestJournalHardening:
    def test_torn_final_line_is_skipped_and_counted(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        append_journal(path, {"key": "k1", "label": "a", "ok": True})
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "label": "b", "ok": tr')  # torn write
        stats = SweepStats()
        with pytest.warns(RuntimeWarning, match="torn"):
            entries = load_journal(path, stats)
        assert list(entries) == ["k1"]  # the good line survives
        assert stats.journal_bad_lines == 1
        assert "1 torn journal line" in stats.render()

    def test_intact_journal_counts_nothing(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        append_journal(path, {"key": "k1", "label": "a", "ok": True})
        stats = SweepStats()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            entries = load_journal(path, stats)
        assert list(entries) == ["k1"]
        assert stats.journal_bad_lines == 0

    def test_journal_fsync_policy_flushes_each_record(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        path = str(tmp_path / "journal.jsonl")
        journal = str(path)
        run_specs(
            [SPEC], jobs=1, use_cache=True, cache_dir=str(tmp_path / "cache"),
            policy=ExecPolicy(journal_fsync=True), resume=journal,
        )
        assert synced  # at least the journal append fsynced
        baseline = len(synced)
        synced.clear()
        run_specs(
            [RunSpec(abbr="FW", config_name="BASE", scale="tiny")],
            jobs=1, use_cache=True, cache_dir=str(tmp_path / "cache"),
            policy=ExecPolicy(journal_fsync=False),
            resume=str(tmp_path / "j2.jsonl"),
        )
        assert len(synced) < baseline  # default stays fsync-free on append

    def test_append_fsync_flag_direct(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        path = str(tmp_path / "j.jsonl")
        assert append_journal(path, {"key": "a"}, fsync=False)
        assert calls == []
        assert append_journal(path, {"key": "b"}, fsync=True)
        assert len(calls) == 1
        assert len(load_journal(path)) == 2


class TestTmpReaping:
    def test_stale_ckpt_tmp_is_reaped(self, tmp_path):
        directory = str(tmp_path)
        os.makedirs(directory, exist_ok=True)
        stale = os.path.join(directory, "run.ckpt.tmp.4242")
        open(stale, "wb").close()
        old = time.time() - 2 * parallel.STALE_TMP_AGE_S
        os.utime(stale, (old, old))
        fresh = os.path.join(directory, "run.ckpt.tmp.4243")
        open(fresh, "wb").close()
        assert parallel.reap_stale_tmp(directory) == 1
        assert not os.path.exists(stale) and os.path.exists(fresh)

    def test_sweep_counts_reaped_tmp_files(self, tmp_path):
        directory = str(tmp_path)
        stale = os.path.join(directory, "dead.ckpt.tmp.999")
        open(stale, "wb").close()
        old = time.time() - 2 * parallel.STALE_TMP_AGE_S
        os.utime(stale, (old, old))
        _, stats = run_specs(
            [SPEC], jobs=1, use_cache=True, cache_dir=directory,
        )
        assert stats.stale_tmp_reaped == 1
        assert "1 stale tmp file" in stats.render()
        assert not os.path.exists(stale)
