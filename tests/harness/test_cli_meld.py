"""CLI smoke tests for `meld-verify`, the melded-lint sweep, and the
technique-comparison matrix."""

import json

import pytest

from repro.__main__ import main


class TestMeldVerifyCommand:
    def test_meld_verify_passes_and_journals(self, tmp_path, capsys):
        workdir = tmp_path / "meld-work"
        dump = tmp_path / "meld-stats.json"
        assert main(["meld-verify", "--apps", "DIVEO,BIN",
                     "--workdir", str(workdir),
                     "--stats-dump", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "DIVEO" in out and "meld(s)" in out
        assert "no meldable regions" in out  # BIN has no diamonds

        lines = (workdir / "journal.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["abbr"] for r in records] == ["DIVEO", "BIN"]
        assert all(r["ok"] for r in records)
        assert records[0]["melds_applied"] == 1

        payload = json.loads(dump.read_text())
        assert payload["meld_verify"]["ok"] is True

    def test_meld_verify_fails_on_mismatch(self, monkeypatch, capsys):
        """Exit nonzero when any workload check reports problems."""
        import repro.staticlib.verify as verify_mod

        real = verify_mod.verify_workload

        def sabotaged(workload, transform=None):
            check = real(workload, transform)
            check.problems.append("injected mismatch (test)")
            return check

        monkeypatch.setattr(verify_mod, "verify_workload", sabotaged)
        assert main(["meld-verify", "--apps", "BIN"]) == 1
        assert "injected mismatch" in capsys.readouterr().out

    def test_meld_verify_unknown_app_errors(self):
        with pytest.raises(SystemExit) as exc:
            main(["meld-verify", "--apps", "NOPE"])
        assert exc.value.code == 2


class TestLintJsonAndMelded:
    def test_lint_format_json_is_machine_readable(self, capsys):
        assert main(["lint", "MM,DIVEO", "--scale", "tiny",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["failed"] is False
        kernels = payload["kernels"]
        assert [k["abbr"] for k in kernels] == ["MM", "DIVEO"]
        for k in kernels:
            assert k["melded"] is False
            for f in k["findings"]:
                assert set(f) == {"rule", "severity", "pc", "message"}

    def test_lint_melded_adds_post_transform_kernels(self, capsys):
        assert main(["lint", "DIVEO", "--scale", "tiny", "--strict",
                     "--melded", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [(k["abbr"], k["melded"]) for k in payload["kernels"]] == [
            ("DIVEO", False), ("DIVEO", True),
        ]
        assert payload["strict"] is True and payload["failed"] is False

    def test_lint_melded_text_tags_kernels(self, capsys):
        assert main(["lint", "DIVEO", "--scale", "tiny", "--melded"]) == 0
        out = capsys.readouterr().out
        assert "DIVEO+meld" in out
        assert "2 kernel(s)" in out


class TestSoundnessExitCode:
    def test_soundness_exits_nonzero_on_violation(self, monkeypatch, capsys):
        """Regression pin: a failing audit must not exit 0."""
        import repro.staticlib

        class FakeReport:
            ok = False

            @staticmethod
            def render():
                return "1 violation(s): fake DR over-promotion"

        monkeypatch.setattr(repro.staticlib, "audit_all",
                            lambda scale, abbrs: FakeReport())
        assert main(["soundness", "--apps", "MM", "--scale", "tiny"]) == 1
        assert "violation" in capsys.readouterr().out

    def test_soundness_covers_divergent_suite_by_default(self, capsys):
        assert main(["soundness", "--apps", "DIVEO,DIVABS,DIVSQ",
                     "--scale", "tiny"]) == 0
        assert "sound" in capsys.readouterr().out


class TestCompareTechniques:
    def test_matrix_renders_divergence_columns(self, capsys):
        assert main(["compare-techniques", "--scale", "tiny",
                     "--apps", "DIVEO", "--no-cache"]) == 0
        out = capsys.readouterr().out
        for needle in ("BASE", "DARSIE", "DARM", "DARM-IDEAL", "DIVEO"):
            assert needle in out
