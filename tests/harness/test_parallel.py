"""The parallel, cache-backed execution layer.

Covers the tentpole guarantees: result-cache hit/miss semantics and
invalidation, corrupted-entry recovery, per-spec failure isolation
(a ``VerificationError`` in one run never aborts the sweep), serial and
process-pool paths agreeing bit-for-bit, and the cache-hit/wall-time
observability carried by :class:`SweepStats`.
"""

import pickle

import pytest

from repro.harness import parallel
from repro.harness.parallel import FUNCTIONAL, RunSpec, SweepError, cache_key, cache_path, run_specs
from repro.harness.runner import VerificationError, WorkloadRunner
from repro.timing import small_config
from repro.workloads import build_workload

SPEC = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_one(spec, **kwargs):
    outcomes, stats = run_specs([spec], **kwargs)
    return outcomes[0], stats


class TestCache:
    def test_miss_then_hit_on_identical_spec(self, cache_dir):
        first, stats1 = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert first.ok and not first.cache_hit
        assert stats1.simulated == 1 and stats1.cache_hits == 0

        second, stats2 = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert second.ok and second.cache_hit
        assert stats2.simulated == 0 and stats2.cache_hits == 1
        assert second.result.cycles == first.result.cycles
        assert second.result.energy_pj == first.result.energy_pj

    def test_perturbed_specs_miss(self, cache_dir):
        base_key = cache_key(SPEC)
        perturbed = [
            RunSpec(abbr="FW", config_name="BASE", scale="tiny"),
            RunSpec(abbr="LIB", config_name="DARSIE", scale="tiny"),
            RunSpec(abbr="LIB", config_name="BASE", scale="small"),
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny",
                    gpu_config=small_config(num_sms=2)),
        ]
        keys = {cache_key(s) for s in perturbed}
        assert base_key not in keys
        assert len(keys) == len(perturbed)

    def test_cache_version_bump_invalidates(self, cache_dir, monkeypatch):
        run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        monkeypatch.setattr(parallel, "CACHE_VERSION", parallel.CACHE_VERSION + 1)
        outcome, stats = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert outcome.ok and not outcome.cache_hit
        assert stats.simulated == 1

    def test_corrupted_entry_falls_back_to_live_run(self, cache_dir):
        first, _ = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        key = cache_key(SPEC)
        path = cache_path(SPEC, key, cache_dir)
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage, not a pickle")

        with pytest.warns(RuntimeWarning, match="corrupt"):
            outcome, stats = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert outcome.ok and not outcome.cache_hit
        assert stats.simulated == 1
        assert stats.cache_read_failures == 1  # counted, not swallowed
        assert outcome.result.cycles == first.result.cycles
        # The live run repaired the entry.
        hit, stats2 = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert hit.cache_hit
        assert stats2.cache_read_failures == 0

    def test_wrong_key_payload_is_a_miss(self, cache_dir):
        run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        key = cache_key(SPEC)
        path = cache_path(SPEC, key, cache_dir)
        with open(path, "wb") as fh:
            pickle.dump({"key": "someone-else", "result": "bogus"}, fh)
        outcome, _ = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert outcome.ok and not outcome.cache_hit

    def test_no_cache_never_touches_disk(self, tmp_path):
        directory = tmp_path / "cache"
        outcome, _ = run_one(SPEC, cache_dir=str(directory), use_cache=False)
        assert outcome.ok
        assert not directory.exists()

    def test_clear_cache(self, cache_dir):
        run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert parallel.clear_cache(cache_dir) == 1
        outcome, _ = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert not outcome.cache_hit

    def test_clear_cache_removes_leaked_tmp_files(self, cache_dir):
        """Interrupted atomic writes leave *.pkl.tmp.<pid> files behind;
        clear_cache must remove them too, not just finished entries."""
        import os

        run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        leak = os.path.join(cache_dir, "LIB-BASE-tiny-0000.pkl.tmp.12345")
        open(leak, "wb").close()
        unrelated = os.path.join(cache_dir, "README.txt")
        open(unrelated, "w").close()
        assert parallel.clear_cache(cache_dir) == 2  # entry + tmp leak
        assert not os.path.exists(leak)
        assert os.path.exists(unrelated)  # never deletes foreign files

    def test_reap_stale_tmp_by_age(self, cache_dir):
        import os
        import time

        os.makedirs(cache_dir)
        fresh = os.path.join(cache_dir, "a.pkl.tmp.111")
        stale = os.path.join(cache_dir, "b.pkl.tmp.222")
        for p in (fresh, stale):
            open(p, "wb").close()
        old = time.time() - 2 * parallel.STALE_TMP_AGE_S
        os.utime(stale, (old, old))
        assert parallel.reap_stale_tmp(cache_dir) == 1
        assert os.path.exists(fresh) and not os.path.exists(stale)

    def test_unwritable_cache_is_counted_and_warned(self, tmp_path):
        """A cache dir that cannot be created degrades gracefully: the
        sweep succeeds, the failure is counted, and a warning fires."""
        blocker = tmp_path / "cache"
        blocker.write_text("a file where the cache directory should be")
        with pytest.warns(RuntimeWarning, match="not writable"):
            outcome, stats = run_one(SPEC, cache_dir=str(blocker), use_cache=True)
        assert outcome.ok and not outcome.cache_hit
        assert stats.cache_write_failures == 1
        assert "1 cache writes failed" in stats.render()

    def test_writable_cache_reports_no_failures(self, cache_dir):
        _, stats = run_one(SPEC, cache_dir=cache_dir, use_cache=True)
        assert stats.cache_write_failures == 0
        assert "cache writes failed" not in stats.render()


class TestFailureIsolation:
    def test_verification_error_is_isolated(self, cache_dir, monkeypatch):
        """One failing oracle check doesn't abort the rest of the sweep."""
        real_build = parallel._build_runner

        def sabotaged(spec):
            runner = real_build(spec)
            if spec.abbr == "FW":
                runner.workload.check = lambda mem, params: False
            return runner

        monkeypatch.setattr(parallel, "_build_runner", sabotaged)
        specs = [
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny"),
            RunSpec(abbr="FW", config_name="BASE", scale="tiny"),
            RunSpec(abbr="FWS", config_name="BASE", scale="tiny"),
        ]
        outcomes, stats = run_specs(specs, cache_dir=cache_dir, use_cache=True)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "VerificationError"
        assert "oracle" in outcomes[1].error
        assert stats.failures == 1 and stats.simulated == 2
        # Failures are reported per-run in the sweep observability...
        statuses = dict((label, status) for label, _, status in stats.per_run)
        assert statuses["FW/BASE@tiny"] == "fail"
        # ...and never cached: with the sabotage removed, the next run
        # re-simulates instead of replaying a poisoned entry.
        monkeypatch.setattr(parallel, "_build_runner", real_build)
        outcome, _ = run_one(specs[1], cache_dir=cache_dir, use_cache=True)
        assert outcome.ok and not outcome.cache_hit

    def test_unknown_config_is_isolated(self, cache_dir):
        specs = [
            RunSpec(abbr="LIB", config_name="NO-SUCH-CONFIG", scale="tiny"),
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny"),
        ]
        outcomes, stats = run_specs(specs, cache_dir=cache_dir)
        assert not outcomes[0].ok and outcomes[0].error_type == "KeyError"
        assert outcomes[1].ok
        assert stats.failures == 1

    def test_strict_raises_after_completing_sweep(self, cache_dir):
        specs = [
            RunSpec(abbr="LIB", config_name="NO-SUCH-CONFIG", scale="tiny"),
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny"),
        ]
        with pytest.raises(SweepError) as excinfo:
            run_specs(specs, cache_dir=cache_dir, strict=True)
        assert len(excinfo.value.failures) == 1
        assert "NO-SUCH-CONFIG" in excinfo.value.failures[0].spec.label

    def test_raising_runner_maps_to_verification_error(self):
        """The underlying runner still raises VerificationError itself."""
        runner = WorkloadRunner(build_workload("LIB", "tiny"))
        runner.workload.check = lambda mem, params: False
        with pytest.raises(VerificationError):
            runner.run("BASE")


@pytest.mark.skipif(not parallel.supports_fork(), reason="needs fork start method")
class TestProcessPool:
    def test_pool_matches_serial(self, cache_dir):
        specs = [
            RunSpec(abbr=a, config_name=c, scale="tiny")
            for a in ("LIB", "FWS")
            for c in ("BASE", "DARSIE")
        ]
        serial, _ = run_specs(specs, jobs=1, use_cache=False)
        pooled, stats = run_specs(specs, jobs=2, use_cache=False)
        assert stats.jobs == 2
        for s, p in zip(serial, pooled):
            assert p.ok, p.error
            assert p.result.cycles == s.result.cycles
            assert p.result.energy_pj == s.result.energy_pj
            assert p.result.stats.instructions_executed == \
                s.result.stats.instructions_executed

    def test_pool_failure_isolation(self, cache_dir):
        specs = [
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny"),
            RunSpec(abbr="LIB", config_name="NO-SUCH-CONFIG", scale="tiny"),
            RunSpec(abbr="FWS", config_name="BASE", scale="tiny"),
        ]
        outcomes, stats = run_specs(specs, jobs=2, use_cache=False)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert stats.failures == 1

    def test_figure8_pool_render_is_byte_identical(self, cache_dir, monkeypatch):
        from repro.harness import experiments

        monkeypatch.setattr(parallel, "_defaults",
                            dict(jobs=1, use_cache=False, cache_dir=cache_dir))
        serial = experiments.figure8(scale="tiny", abbrs=("LIB", "FWS"))
        parallel.configure(jobs=2)
        pooled = experiments.figure8(scale="tiny", abbrs=("LIB", "FWS"))
        assert pooled.render() == serial.render()


class TestFunctionalSpecs:
    def test_functional_sweep_cached(self, cache_dir):
        spec = RunSpec(abbr="LIB", config_name=FUNCTIONAL, scale="tiny")
        outcome, stats = run_one(spec, cache_dir=cache_dir, use_cache=True)
        assert outcome.ok
        assert outcome.result.dimensionality == 1
        assert 0.0 <= outcome.result.levels.tb <= 1.0
        hit, stats2 = run_one(spec, cache_dir=cache_dir, use_cache=True)
        assert hit.cache_hit and stats2.simulated == 0
        assert hit.result.levels == outcome.result.levels


class TestSpecPlumbing:
    def test_specs_are_picklable(self):
        from repro.core import DarsieConfig

        spec = RunSpec(abbr="MM", config_name="DARSIE-ports4", scale="tiny",
                       gpu_config=small_config(num_sms=2),
                       darsie_config=DarsieConfig(skip_ports=4))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.label == "MM/DARSIE-ports4@tiny"

    def test_darsie_variant_roundtrip(self, cache_dir):
        from repro.core import DarsieConfig

        spec = RunSpec(abbr="FWS", config_name="DARSIE-ports1", scale="tiny",
                       darsie_config=DarsieConfig(skip_ports=1))
        outcome, _ = run_one(spec, cache_dir=cache_dir, use_cache=True)
        assert outcome.ok and outcome.result.config_name == "DARSIE-ports1"
        # Variant knobs are part of the cache key.
        other = RunSpec(abbr="FWS", config_name="DARSIE-ports1", scale="tiny",
                        darsie_config=DarsieConfig(skip_ports=2))
        assert cache_key(other) != cache_key(spec)

    def test_last_sweep_stats_exposed(self, cache_dir):
        _, stats = run_one(SPEC, cache_dir=cache_dir, use_cache=False)
        assert parallel.last_sweep_stats() is stats
        assert "1 runs" in stats.render()
        assert "LIB/BASE@tiny" in stats.detail()


class TestCanonicalCacheKeys:
    """Cache keys are derived from the canonical RunConfig serialization:
    they change iff the canonical form changes — in both directions."""

    def test_key_unchanged_when_canonical_form_identical(self):
        # gpu_config=None and an explicit copy of the default GPU are the
        # same run: same canonical dict, same key.
        implicit = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
        explicit = RunSpec(abbr="LIB", config_name="BASE", scale="tiny",
                           gpu_config=small_config(num_sms=1))
        assert (implicit.to_run_config().canonical_json()
                == explicit.to_run_config().canonical_json())
        assert cache_key(implicit) == cache_key(explicit)

    def test_key_changes_when_canonical_form_changes(self):
        base = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
        tweaked = base.with_overrides({"gpu.l1_lines": 512})
        assert (base.to_run_config().canonical_json()
                != tweaked.to_run_config().canonical_json())
        assert cache_key(base) != cache_key(tweaked)

    def test_explicit_darsie_defaults_are_a_different_run(self):
        from repro.core import DarsieConfig

        implicit = RunSpec(abbr="MM", config_name="DARSIE", scale="tiny")
        explicit = RunSpec(abbr="MM", config_name="DARSIE", scale="tiny",
                           darsie_config=DarsieConfig())
        assert (implicit.to_run_config().canonical_json()
                != explicit.to_run_config().canonical_json())
        assert cache_key(implicit) != cache_key(explicit)

    def test_spec_run_config_round_trip(self):
        from repro.core import DarsieConfig

        spec = RunSpec(abbr="MM", config_name="DARSIE-ports4", scale="tiny",
                       gpu_config=small_config(num_sms=2),
                       darsie_config=DarsieConfig(skip_ports=4))
        assert RunSpec.from_run_config(spec.to_run_config()) == spec

    def test_with_overrides_rejects_bad_path(self):
        from repro.config import ConfigError

        with pytest.raises(ConfigError, match="valid paths"):
            SPEC.with_overrides({"nope.field": 1})

    def test_policy_is_excluded_from_the_cache_key(self):
        from repro.config import ExecPolicy

        plain = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
        budgeted = RunSpec(abbr="LIB", config_name="BASE", scale="tiny",
                           policy=ExecPolicy(timeout_s=60.0, max_retries=3))
        # The canonical forms differ (policy is a real config field) ...
        assert (plain.to_run_config().canonical_json()
                != budgeted.to_run_config().canonical_json())
        # ... but the key does not: a timeout never changes the result.
        assert cache_key(plain) == cache_key(budgeted)


def _fail(label_idx, error_type="VerificationError"):
    from repro.harness.parallel import RunOutcome

    spec = RunSpec(abbr="MM", config_name=f"VARIANT-{label_idx}", scale="tiny")
    return RunOutcome(spec=spec, result=None, error="boom", error_type=error_type)


class TestSweepErrorMessage:
    def test_five_or_fewer_failures_are_listed_in_full(self):
        err = SweepError([_fail(i) for i in range(5)])
        message = str(err)
        assert message.startswith("5 run(s) failed")
        assert "more)" not in message
        for i in range(5):
            assert f"MM/VARIANT-{i}@tiny" in message

    def test_overflow_failures_are_truncated_with_a_count(self):
        err = SweepError([_fail(i) for i in range(7)])
        message = str(err)
        assert message.startswith("7 run(s) failed")
        assert "(+2 more)" in message
        assert "MM/VARIANT-4@tiny" in message
        assert "MM/VARIANT-5@tiny" not in message
        assert len(err.failures) == 7  # the full list still rides along


class TestJournal:
    def test_outcome_round_trips_through_the_journal(self, tmp_path):
        from repro.harness.parallel import (
            RunOutcome,
            append_journal,
            load_journal,
        )

        path = str(tmp_path / "sweep.jsonl")
        ok = RunOutcome(spec=SPEC, result="unused", wall_time_s=1.25, attempts=2)
        bad = RunOutcome(spec=SPEC, result=None, error="boom",
                         error_type="Timeout", quarantined=True)
        assert append_journal(path, ok.to_journal_dict("key-1"))
        assert append_journal(path, bad.to_journal_dict("key-2"))
        entries = load_journal(path)
        assert entries["key-1"]["ok"] is True
        assert entries["key-1"]["error_type"] is None
        assert entries["key-1"]["attempts"] == 2
        assert entries["key-1"]["wall_time_s"] == 1.25
        assert entries["key-2"]["ok"] is False
        assert entries["key-2"]["error_type"] == "Timeout"
        assert entries["key-2"]["quarantined"] is True
        assert entries["key-1"]["label"] == SPEC.label

    def test_last_entry_wins_and_truncated_lines_are_skipped(self, tmp_path):
        from repro.harness.parallel import RunOutcome, append_journal, load_journal

        path = str(tmp_path / "sweep.jsonl")
        fail = RunOutcome(spec=SPEC, result=None, error="x", error_type="KeyError")
        ok = RunOutcome(spec=SPEC, result="unused")
        append_journal(path, fail.to_journal_dict("key-1"))
        append_journal(path, ok.to_journal_dict("key-1"))
        with open(path, "a") as fh:
            fh.write('{"key": "key-2", "ok": tr')  # kill mid-write
        entries = load_journal(path)
        assert entries["key-1"]["ok"] is True
        assert "key-2" not in entries

    def test_missing_journal_is_empty(self, tmp_path):
        from repro.harness.parallel import load_journal

        assert load_journal(str(tmp_path / "nope.jsonl")) == {}


class TestResume:
    def test_resume_skips_completed_specs(self, cache_dir, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        done = [
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny"),
            RunSpec(abbr="FWS", config_name="BASE", scale="tiny"),
        ]
        rest = [
            RunSpec(abbr="LIB", config_name="UV", scale="tiny"),
            RunSpec(abbr="FWS", config_name="UV", scale="tiny"),
        ]
        # "Killed" sweep: only half the specs completed.
        _, stats1 = run_specs(done, cache_dir=cache_dir, use_cache=True,
                              resume=journal)
        assert stats1.simulated == 2 and stats1.journal_skips == 0

        outcomes, stats2 = run_specs(done + rest, cache_dir=cache_dir,
                                     use_cache=True, resume=journal)
        assert all(o.ok for o in outcomes)
        assert stats2.journal_skips == 2
        assert stats2.simulated == 2  # only the incomplete specs re-ran
        assert [o.resumed for o in outcomes] == [True, True, False, False]
        statuses = dict((label, status) for label, _, status in stats2.per_run)
        assert statuses["LIB/BASE@tiny"] == "resume"
        assert statuses["LIB/UV@tiny"] == "sim"
        assert "2 resumed from journal" in stats2.render()

    def test_resume_false_disables_the_module_default(self, cache_dir, tmp_path,
                                                      monkeypatch):
        journal = str(tmp_path / "sweep.jsonl")
        monkeypatch.setitem(parallel._defaults, "resume", journal)
        _, stats = run_one(SPEC, cache_dir=cache_dir, use_cache=True, resume=False)
        assert stats.journal_skips == 0
        assert not (tmp_path / "sweep.jsonl").exists()


class TestKeyboardInterrupt:
    def test_interrupt_still_flushes_partial_stats(self, monkeypatch):
        real_worker = parallel._worker

        def interrupting(spec, attempt=1, in_child=False, ckpt=None):
            if spec.abbr == "FWS":
                raise KeyboardInterrupt()
            return real_worker(spec, attempt, in_child=in_child, ckpt=ckpt)

        monkeypatch.setattr(parallel, "_worker", interrupting)
        specs = [
            RunSpec(abbr="LIB", config_name="BASE", scale="tiny"),
            RunSpec(abbr="FWS", config_name="BASE", scale="tiny"),
            RunSpec(abbr="MM", config_name="BASE", scale="tiny"),
        ]
        with pytest.raises(KeyboardInterrupt):
            run_specs(specs, jobs=1, use_cache=False)
        stats = parallel.last_sweep_stats()
        assert stats is not None
        assert stats.runs == 1  # the spec that landed before the interrupt
        assert [label for label, _, _ in stats.per_run] == ["LIB/BASE@tiny"]
