"""Unit tests for the workload runner and reporting helpers."""

import pytest

from repro.harness.related_work import TABLE3, darsie_covers_all, render_table3
from repro.harness.reporting import fmt_pct, fmt_x, format_table
from repro.harness.runner import CONFIG_NAMES, WorkloadRunner, clear_runner_cache, get_runner
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def runner():
    return WorkloadRunner(build_workload("CONVTEX", "tiny"))


class TestRunner:
    def test_all_config_names_run(self, runner):
        for name in CONFIG_NAMES:
            assert runner.run(name).cycles > 0

    def test_unknown_config(self, runner):
        with pytest.raises(KeyError, match="unknown configuration"):
            runner.run("WARP-DRIVE")

    def test_caching_returns_same_object(self, runner):
        assert runner.run("BASE") is runner.run("BASE")

    def test_speedup_and_reductions_consistent(self, runner):
        sp = runner.speedup("DARSIE")
        assert sp == runner.run("BASE").cycles / runner.run("DARSIE").cycles
        red = runner.instruction_reduction("DARSIE")
        assert 0 <= red < 1
        assert runner.instruction_reduction("BASE") == 0.0

    def test_energy_reduction_sign(self, runner):
        assert runner.energy_reduction("BASE") == pytest.approx(0.0)

    def test_functional_trace_cached(self, runner):
        assert runner.functional_trace() is runner.functional_trace()

    def test_get_runner_memoizes(self):
        clear_runner_cache()
        a = get_runner("HS", "tiny")
        b = get_runner("HS", "tiny")
        assert a is b
        clear_runner_cache()


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_formatters(self):
        assert fmt_pct(0.5) == " 50.0%"
        assert fmt_x(1.25) == "1.25x"


class TestRelatedWork:
    def test_capability_matrix(self):
        assert darsie_covers_all()
        assert len(TABLE3) == 6
        assert "DARSIE" in render_table3()
