"""Cross-workload invariants of the elimination mechanisms.

Suite-wide properties that must hold on every Table 1 workload — the
load-bearing assumptions behind the paper's evaluation methodology.
"""

import pytest

from repro.harness.runner import WorkloadRunner
from repro.timing.stats import EnergyEvent
from repro.workloads import ALL_ABBRS, build_workload


@pytest.fixture(scope="module")
def runners():
    return {abbr: WorkloadRunner(build_workload(abbr, "tiny")) for abbr in ALL_ABBRS}


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_darsie_reduces_frontend_work(runners, abbr):
    """Skipping before fetch must reduce fetches, decodes and I-cache
    probes — never increase them (Section 6.1's energy argument)."""
    base = runners[abbr].run("BASE").stats
    dar = runners[abbr].run("DARSIE").stats
    assert dar.instructions_fetched <= base.instructions_fetched
    assert dar.instructions_decoded <= base.instructions_decoded
    assert (
        dar.energy_events[EnergyEvent.ICACHE_FETCH]
        <= base.energy_events[EnergyEvent.ICACHE_FETCH]
    )
    if dar.instructions_skipped:
        assert dar.instructions_fetched < base.instructions_fetched


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_uv_does_not_touch_the_frontend(runners, abbr):
    """UV eliminates at issue: fetch/decode counts match BASE exactly."""
    base = runners[abbr].run("BASE").stats
    uv = runners[abbr].run("UV").stats
    assert uv.instructions_fetched == base.instructions_fetched
    assert uv.instructions_decoded == base.instructions_decoded
    assert uv.instructions_skipped == 0


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_skip_accounting_balances(runners, abbr):
    """Executed + skipped partitions the baseline dynamic stream, and
    follower skips account for every skipped instruction."""
    base = runners[abbr].run("BASE").stats
    dar = runners[abbr].run("DARSIE").stats
    assert (
        dar.instructions_executed + dar.instructions_skipped
        == base.instructions_executed
    )
    assert dar.follower_skips == dar.instructions_skipped
    assert sum(dar.skipped_by_class.values()) == dar.instructions_skipped


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_darsie_dynamic_energy_never_above_base(runners, abbr):
    """Skipping removes fetch/decode/issue/execute events and adds only
    tiny-SRAM accesses, so *dynamic* energy can never grow.  (Total
    energy includes leakage and can regress at the tiny scales used in
    unit tests when cycles stretch; Figure 11's totals are measured at
    benchmark scale.)"""
    from repro.energy import PASCAL_ENERGY_MODEL

    base = PASCAL_ENERGY_MODEL.dynamic_energy_pj(runners[abbr].run("BASE").stats)
    dar = PASCAL_ENERGY_MODEL.dynamic_energy_pj(runners[abbr].run("DARSIE").stats)
    assert dar <= base * 1.005


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_1d_darsie_skips_are_uniform_only(runners, abbr):
    wl = runners[abbr].workload
    dar = runners[abbr].run("DARSIE").stats
    if wl.dimensionality == 1:
        assert set(dar.skipped_by_class) <= {"uniform"}, (
            f"{abbr}: 1D TBs must not produce affine/unstructured skips"
        )
