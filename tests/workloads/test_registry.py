"""Unit tests for the Table 1 registry."""

import pytest

from repro.workloads import ALL_ABBRS, ONE_D_ABBRS, TABLE1, TWO_D_ABBRS, build_workload, table1_rows


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(TABLE1) == 13
        assert set(ALL_ABBRS) == set(TABLE1)
        assert set(ONE_D_ABBRS) | set(TWO_D_ABBRS) == set(ALL_ABBRS)
        assert not set(ONE_D_ABBRS) & set(TWO_D_ABBRS)

    def test_dimensionalities(self):
        for abbr in ONE_D_ABBRS:
            assert TABLE1[abbr].dimensionality == 1
        for abbr in TWO_D_ABBRS:
            assert TABLE1[abbr].dimensionality == 2

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            build_workload("NOPE")

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            build_workload("MM", "gigantic")

    def test_rows_render(self):
        rows = table1_rows()
        assert len(rows) == 13
        assert rows[0][0] == "BIN"


class TestBuild:
    @pytest.mark.parametrize("abbr", ALL_ABBRS)
    def test_builds_with_consistent_metadata(self, abbr):
        wl = build_workload(abbr, "tiny")
        assert wl.abbr == abbr
        assert wl.launch.warps_per_block >= 1
        assert wl.program.instructions[-1].is_exit
        # Params declared by the kernel are provided by the setup.
        mem, params = wl.fresh()
        for p in wl.program.params:
            assert p in params

    def test_small_scale_uses_paper_tb_dims(self):
        for abbr in ALL_ABBRS:
            wl = build_workload(abbr, "small")
            assert wl.tb_dim == TABLE1[abbr].tb_dim, abbr
