"""Medium-scale functional verification (opt-in: slower).

Run with ``REPRO_MEDIUM=1 pytest tests/workloads/test_medium_scale.py``.
The default test session covers ``tiny``; this guards the ``medium``
problem sizes used for closer-to-paper benchmark runs.
"""

import os

import pytest

from repro.simt import run_functional
from repro.workloads import ALL_ABBRS, build_workload

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_MEDIUM"),
    reason="medium-scale verification is opt-in (set REPRO_MEDIUM=1)",
)


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_medium_functional(abbr):
    wl = build_workload(abbr, "medium")
    mem, params = wl.fresh()
    run_functional(wl.program, wl.launch, mem, params=params)
    assert wl.verify(mem, params)


@pytest.mark.parametrize("abbr", ["CONVTEX", "HS"])
def test_medium_darsie_timing(abbr):
    from repro.harness.runner import WorkloadRunner

    runner = WorkloadRunner(build_workload(abbr, "medium"))
    assert runner.speedup("DARSIE") > 1.0
