"""Per-kernel structural tests: each workload exhibits the redundancy
profile that motivated its place in Table 1."""

import numpy as np
import pytest

from repro import Marking, analyze_program, promote_markings
from repro.core import analyze_program
from repro.isa.operands import MemSpace
from repro.workloads import build_workload


def skippable_fraction(abbr, scale="tiny"):
    wl = build_workload(abbr, scale)
    analysis = analyze_program(wl.program)
    promoted = promote_markings(analysis.instruction_markings, wl.launch)
    return len(analysis.skippable_pcs(promoted)) / len(wl.program)


class TestStaticProfiles:
    def test_mm_shared_loads_conditionally_redundant(self):
        wl = build_workload("MM", "small")
        analysis = analyze_program(wl.program)
        shared_loads = [
            i for i in wl.program.instructions
            if i.is_load and i.mem.space is MemSpace.SHARED
        ]
        crs = [i for i in shared_loads
               if analysis.instruction_markings[i.pc] is Marking.CONDITIONAL]
        # The four unrolled Bs reads are CR; the As reads are vector.
        assert len(crs) == 4

    def test_lib_is_uniform_dominated(self):
        wl = build_workload("LIB", "small")
        analysis = analyze_program(wl.program)
        counts = analysis.counts()
        assert counts[Marking.REDUNDANT] > counts[Marking.VECTOR]

    def test_cp_atom_loads_definitely_redundant(self):
        wl = build_workload("CP", "small")
        analysis = analyze_program(wl.program)
        global_loads = [
            i for i in wl.program.instructions
            if i.is_load and i.mem.space is MemSpace.GLOBAL
        ]
        assert all(
            analysis.instruction_markings[i.pc] is Marking.REDUNDANT
            for i in global_loads
        ), "atom records load at loop-index (uniform) addresses"

    def test_2d_apps_gain_skippable_pcs_from_promotion(self):
        for abbr in ("MM", "FWS", "CONVTEX", "DCT8x8"):
            wl = build_workload(abbr, "tiny")
            analysis = analyze_program(wl.program)
            before = analysis.skippable_pcs()
            after = analysis.skippable_pcs(
                promote_markings(analysis.instruction_markings, wl.launch)
            )
            assert after > before, f"{abbr}: promotion must unlock skipping"

    def test_1d_apps_gain_nothing_from_promotion(self):
        for abbr in ("BIN", "PT", "FW", "LIB"):
            wl = build_workload(abbr, "tiny")
            analysis = analyze_program(wl.program)
            before = analysis.skippable_pcs()
            after = analysis.skippable_pcs(
                promote_markings(analysis.instruction_markings, wl.launch)
            )
            assert after == before, f"{abbr}: 1D launch promotes nothing"


class TestOracles:
    """The numpy oracles themselves are sane (spot checks on known
    closed forms)."""

    def test_fw_oracle_is_walsh_hadamard(self):
        from repro.workloads.kernels.fw import _fwht

        # WHT of a delta is constant +-1 pattern; of constants: energy in bin 0.
        x = np.zeros(8)
        x[0] = 1.0
        assert np.allclose(_fwht(x), np.ones(8) * 1.0)
        c = np.ones(8)
        out = _fwht(c)
        assert out[0] == 8.0 and np.allclose(out[1:], 0.0)

    def test_fw_oracle_is_involution_up_to_scale(self):
        from repro.workloads.kernels.fw import _fwht

        rng = np.random.default_rng(1)
        x = rng.standard_normal(16)
        assert np.allclose(_fwht(_fwht(x)) / 16.0, x)

    def test_dct_matrix_is_orthonormal(self):
        from repro.workloads.kernels.dct import _dct_matrix

        c = _dct_matrix(8)
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_fws_oracle_shortest_paths(self):
        from repro.workloads.kernels.fws import _oracle

        inf = 10**6
        d = np.array([[[0, 1, inf], [inf, 0, 1], [1, inf, 0]]], dtype=np.int64)
        out = _oracle(d)
        assert out[0, 0, 2] == 2  # 0 -> 1 -> 2
        assert out[0, 1, 0] == 2  # 1 -> 2 -> 0

    def test_bin_oracle_converges_to_payoff(self):
        from repro.workloads.kernels.bin import _oracle

        # With pu + pd = 1 and df = 1, a sure payoff stays put.
        v = _oracle(s0=100.0, k=0.0, l2u=0.0, pu=0.5, pd=0.5, df=1.0, n=16)
        assert v == pytest.approx(100.0)

    def test_pt_oracle_respects_block_clamping(self):
        from repro.workloads.kernels.pt import _oracle

        wall = np.zeros((1, 8), dtype=np.int64)
        src = np.array([9, 0, 9, 9, 9, 9, 0, 9], dtype=np.int64)
        out = _oracle(wall, src, block=4)
        # Column 3 may not see column 4's 0 across the block boundary.
        assert out[3] == 9
        assert out[2] == 0
