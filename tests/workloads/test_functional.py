"""Every Table 1 workload verifies against its numpy oracle."""

import pytest

from repro import Tracer, run_functional, taxonomy_breakdown
from repro.workloads import ALL_ABBRS, ONE_D_ABBRS, TWO_D_ABBRS, build_workload


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_functional_correctness(abbr):
    wl = build_workload(abbr, "tiny")
    mem, params = wl.fresh()
    engine = run_functional(wl.program, wl.launch, mem, params=params)
    assert wl.verify(mem, params), f"{abbr} output mismatch"
    assert engine.instructions_executed > 0


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_fresh_memory_is_independent(abbr):
    wl = build_workload(abbr, "tiny")
    mem1, p1 = wl.fresh()
    run_functional(wl.program, wl.launch, mem1, params=p1)
    mem2, p2 = wl.fresh()
    # The second image must be untouched by the first run.
    run_functional(wl.program, wl.launch, mem2, params=p2)
    assert wl.verify(mem2, p2)


@pytest.mark.parametrize("abbr", TWO_D_ABBRS)
def test_2d_workloads_have_tb_redundancy(abbr):
    """The structural property the suite exists to exhibit."""
    wl = build_workload(abbr, "tiny")
    mem, params = wl.fresh()
    tracer = Tracer()
    run_functional(wl.program, wl.launch, mem, params=params, tracer=tracer)
    b = taxonomy_breakdown(tracer.trace)
    assert b.tb_redundant > 0.05, f"{abbr}: no TB redundancy at all?"


@pytest.mark.parametrize("abbr", ONE_D_ABBRS)
def test_1d_workloads_lack_nonuniform_redundancy(abbr):
    wl = build_workload(abbr, "tiny")
    mem, params = wl.fresh()
    tracer = Tracer()
    run_functional(wl.program, wl.launch, mem, params=params, tracer=tracer)
    b = taxonomy_breakdown(tracer.trace)
    # 1D TBs: affine/unstructured redundancy marginal (Figure 2).
    assert b.affine + b.unstructured < 0.15, abbr
