"""Timing-model correctness: every workload, every frontend, verified.

These are the end-to-end guarantees behind every number the harness
reports: no elimination mechanism may change a single output word.
"""

import pytest

from repro.core import DarsieConfig
from repro.harness.runner import WorkloadRunner
from repro.workloads import ALL_ABBRS, build_workload

CONFIGS = ["BASE", "UV", "DAC-IDEAL", "DARSIE", "DARSIE-IGNORE-STORE",
           "DARSIE-NO-CF-SYNC", "SILICON-SYNC"]


@pytest.fixture(scope="module")
def runners():
    return {abbr: WorkloadRunner(build_workload(abbr, "tiny")) for abbr in ALL_ABBRS}


@pytest.mark.parametrize("abbr", ALL_ABBRS)
@pytest.mark.parametrize("config", CONFIGS)
def test_verified_under_config(runners, abbr, config):
    # WorkloadRunner.run raises VerificationError on any mismatch.
    result = runners[abbr].run(config)
    assert result.cycles > 0


@pytest.mark.parametrize("abbr", ["MM", "CONVTEX", "BIN"])
def test_starved_configurations(runners, abbr):
    """Tiny skip tables and rename freelists must stay correct."""
    runner = runners[abbr]
    for cfg in (
        DarsieConfig(rename_regs_per_tb=2),
        DarsieConfig(skip_entries_per_tb=1),
        DarsieConfig(skip_ports=1),
        DarsieConfig(sync_on_write=True),
    ):
        result = runner.run(f"stress-{cfg}", cfg)
        assert result.cycles > 0


@pytest.mark.parametrize("abbr", ALL_ABBRS)
def test_darsie_skips_at_most_base_instructions(runners, abbr):
    base = runners[abbr].run("BASE")
    darsie = runners[abbr].run("DARSIE")
    assert darsie.stats.instructions_skipped <= base.stats.instructions_executed
    # Executed + skipped covers the same dynamic instruction stream.
    assert (
        darsie.stats.instructions_executed + darsie.stats.instructions_skipped
        == base.stats.instructions_executed
    )
