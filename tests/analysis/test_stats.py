"""geomean: positive-input contract and explicit skip-and-warn handling."""

import math

import pytest

from repro.analysis.stats import geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_raises_by_default(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_skip_nonpositive_warns_and_drops(self):
        with pytest.warns(RuntimeWarning, match="skipping non-positive"):
            result = geomean([2.0, 0.0, 8.0], skip_nonpositive=True)
        assert result == pytest.approx(4.0)

    def test_skip_nonpositive_all_dropped_raises(self):
        with pytest.warns(RuntimeWarning):
            with pytest.raises(ValueError, match="empty"):
                geomean([0.0, -1.0], skip_nonpositive=True)

    def test_full_reduction_edge_case(self):
        """A workload with a 100% energy reduction (remaining ratio 0)
        must be skipped, not clamped to 1e-9: the old clamp dragged the
        group GMEAN to ~100% reduction; skipping keeps it at the other
        members' value."""
        reductions = [0.3, 1.0]
        with pytest.warns(RuntimeWarning):
            remaining = geomean(
                [1.0 - r for r in reductions], skip_nonpositive=True
            )
        assert 1.0 - remaining == pytest.approx(0.3)
        # The clamped formulation this replaces was poisoned:
        clamped = geomean([max(1e-9, 1.0 - r) for r in reductions])
        assert 1.0 - clamped > 0.99

    def test_skip_nonpositive_no_op_on_clean_input(self):
        values = [0.5, 1.5, 2.5]
        assert geomean(values, skip_nonpositive=True) == pytest.approx(
            geomean(values)
        )
        assert geomean(values) == pytest.approx(
            math.exp(sum(math.log(v) for v in values) / 3)
        )
