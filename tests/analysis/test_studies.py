"""Unit tests for the limit studies and survey."""

import numpy as np
import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, Tracer, assemble, run_functional
from repro.analysis import default_survey, geomean, redundancy_levels, taxonomy_breakdown
from repro.analysis.limit_study import average_levels
from repro.analysis.stats import percent


def trace_of(src, block, warp=4, grid=1, data=None):
    prog = assemble(src)
    mem = GlobalMemory(4096)
    params = {"out": mem.alloc(64)}
    if data is not None:
        params["tab"] = mem.alloc_array(data)
    launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(*block), warp_size=warp)
    tracer = Tracer()
    run_functional(prog, launch, mem, params=params, tracer=tracer)
    return tracer.trace


SRC = """
.param tab
.param out
    mul.u32 $a, %tid.x, 4
    add.u32 $a, $a, %param.tab
    ld.global.s32 $v, [$a]
    mul.u32 $o, %tid.y, %ntid.x
    add.u32 $o, $o, %tid.x
    shl.u32 $o, $o, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $v
    exit
"""

DATA = np.array([9, 2, 7, 5, 1, 8, 3, 6], dtype=np.int64)


class TestTaxonomyBreakdown:
    def test_2d_has_all_classes(self):
        b = taxonomy_breakdown(trace_of(SRC, (4, 2), data=DATA))
        assert b.affine > 0
        assert b.unstructured > 0
        assert b.tb_redundant == pytest.approx(b.uniform + b.affine + b.unstructured)
        total = b.tb_redundant + b.non_redundant
        assert total == pytest.approx(1.0)

    def test_1d_mostly_non_redundant(self):
        b = taxonomy_breakdown(trace_of(SRC, (8, 1), data=DATA))
        assert b.affine == 0.0
        assert b.unstructured == 0.0

    def test_empty_trace_rejected(self):
        from repro.simt.tracer import ExecutionTrace

        with pytest.raises(ValueError):
            taxonomy_breakdown(ExecutionTrace())


class TestRedundancyLevels:
    def test_tb_at_least_grid(self):
        lv = redundancy_levels(trace_of(SRC, (4, 2), grid=2, data=DATA))
        assert lv.tb >= lv.grid
        assert 0 <= lv.vector <= 1
        # scalar + vector = 1 - tb (disjoint complements of tb)
        assert lv.scalar + lv.vector == pytest.approx(1.0 - lv.tb)

    def test_average(self):
        lv = redundancy_levels(trace_of(SRC, (4, 2), data=DATA))
        avg = average_levels([lv, lv])
        assert avg.tb == pytest.approx(lv.tb)


class TestStatsHelpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0]) == 2.0

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_percent(self):
        assert percent(0.256) == "25.6%"


class TestSurvey:
    def test_matches_paper_aggregates(self):
        s = default_survey()
        assert s.num_applications == 133
        assert s.fraction_multi_dimensional > 0.33
        assert abs(s.fraction_library_multi_dimensional - 0.6) < 0.01
        assert abs(s.mean_time_in_multi_dimensional_kernels - 0.71) < 0.02
        assert len(s.promotion_failures()) == 1

    def test_deterministic(self):
        a, b = default_survey(), default_survey()
        assert a.fraction_multi_dimensional == b.fraction_multi_dimensional
