"""Unit tests for the per-PC opportunity profiler."""

import pytest

from repro import Marking
from repro.analysis import opportunity_report
from repro.harness.runner import WorkloadRunner
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def mm_report():
    runner = WorkloadRunner(build_workload("MM", "tiny"))
    return opportunity_report(
        runner.analysis, runner.functional_trace(), runner.workload.launch
    ), runner


class TestReport:
    def test_covers_every_static_instruction(self, mm_report):
        report, runner = mm_report
        assert len(report.rows) == len(runner.workload.program)

    def test_executions_sum_to_trace(self, mm_report):
        report, runner = mm_report
        assert sum(r.executions for r in report.rows) == report.total_executions

    def test_mm_captures_all_redundancy(self, mm_report):
        """Regular MM has no blockers: everything redundant is skippable."""
        report, _ = mm_report
        assert report.captured_fraction() == 1.0
        assert report.lost() == []

    def test_render(self, mm_report):
        report, _ = mm_report
        text = report.render(limit=5)
        assert "skippable" in text and "0x" in text


class TestBlockers:
    def test_store_and_atomic_blockers(self):
        runner = WorkloadRunner(build_workload("FWS", "tiny"))
        report = opportunity_report(
            runner.analysis, runner.functional_trace(), runner.workload.launch
        )
        by_pc = {r.pc: r for r in report.rows}
        stores = [i for i in runner.workload.program.instructions if i.is_store]
        # Stores never skip; when their inputs happen to be redundant the
        # profiler names the reason.
        for st in stores:
            assert not by_pc[st.pc].skippable
            if by_pc[st.pc].redundant_executions:
                assert by_pc[st.pc].blocker == "no destination register"

    def test_1d_blockers_are_failed_promotion(self):
        runner = WorkloadRunner(build_workload("FW", "tiny"))
        report = opportunity_report(
            runner.analysis, runner.functional_trace(), runner.workload.launch
        )
        # FW (1D) has some incidentally redundant vector-marked work.
        vec_lost = [
            r for r in report.lost()
            if r.promoted is Marking.VECTOR and r.blocker
        ]
        for r in vec_lost:
            assert "vector" in r.blocker
