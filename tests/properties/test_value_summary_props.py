"""Property-based tests for value-pattern classification."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.simt.tracer import AFFINE, UNIFORM, UNSTRUCTURED, ValueSummary

lane_values = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), min_size=2, max_size=32
)


@given(st.integers(-(2**31), 2**31 - 1), st.integers(2, 32))
def test_constant_vectors_are_uniform(value, n):
    s = ValueSummary.of(np.full(n, value, dtype=np.int64))
    assert s.kind == UNIFORM and s.base == float(value)


@given(
    st.integers(-(2**20), 2**20),
    st.integers(-(2**10), 2**10).filter(lambda x: x != 0),
    st.integers(2, 32),
)
def test_arithmetic_progressions_are_affine(base, stride, n):
    v = base + stride * np.arange(n, dtype=np.int64)
    s = ValueSummary.of(v)
    assert s.kind == AFFINE
    assert s.base == float(base) and s.stride == float(stride)


@given(lane_values)
def test_classification_is_total_and_deterministic(values):
    a = ValueSummary.of(np.array(values, dtype=np.int64))
    b = ValueSummary.of(np.array(values, dtype=np.int64))
    assert a == b
    assert a.kind in (UNIFORM, AFFINE, UNSTRUCTURED)


@given(lane_values, lane_values)
def test_equal_summaries_for_equal_vectors_only(xs, ys):
    """Summary equality must imply redundancy-safe sharing: two equal
    summaries never come from vectors with different uniform/affine
    content (unstructured digests may collide only across distinct
    non-pattern vectors, with crc32 probability ~2^-32 — we only assert
    the structured kinds here)."""
    a = ValueSummary.of(np.array(xs, dtype=np.int64))
    b = ValueSummary.of(np.array(ys, dtype=np.int64))
    if a == b and a.kind in (UNIFORM, AFFINE) and len(xs) == len(ys):
        assert xs == ys


@given(lane_values)
def test_kind_matches_vector_structure(values):
    v = np.array(values, dtype=np.int64)
    s = ValueSummary.of(v)
    if s.kind == UNIFORM:
        assert (v == v[0]).all()
    elif s.kind == AFFINE:
        d = np.diff(v)
        assert (d == d[0]).all() and d[0] != 0
    else:
        d = np.diff(v)
        assert not (d == d[0]).all()
