"""Differential testing: the SIMT executor vs an independent evaluator.

Random straight-line integer programs are executed on the functional
engine and on a deliberately naive per-lane Python interpreter written
in this test; the final register files must agree lane-for-lane.  This
catches vectorisation mistakes (masking, dtype, operand order) that
kernel-level oracles can miss.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Dim3, GlobalMemory, LaunchConfig, assemble, run_functional

WARP = 4
BLOCK = (4, 2)
N_THREADS = BLOCK[0] * BLOCK[1]

REGS = ["r0", "r1", "r2"]
OPS = ["add", "sub", "mul", "min", "max", "and", "or", "xor"]
SRC_CHOICES = [f"${r}" for r in REGS] + ["%tid.x", "%tid.y", "%laneid"] + [
    str(v) for v in (0, 1, 3, 7, -2)
]

lines = st.builds(
    lambda op, d, a, b: (op, d, a, b),
    st.sampled_from(OPS),
    st.sampled_from(REGS),
    st.sampled_from(SRC_CHOICES),
    st.sampled_from(SRC_CHOICES),
)


def _naive_eval(prog_lines):
    """Per-thread scalar interpreter (the independent oracle)."""
    results = {}
    for t in range(N_THREADS):
        tid_x = t % BLOCK[0]
        tid_y = t // BLOCK[0]
        lane = t % WARP
        regs = {r: 0 for r in REGS}

        def value(token):
            if token.startswith("$"):
                return regs[token[1:]]
            if token == "%tid.x":
                return tid_x
            if token == "%tid.y":
                return tid_y
            if token == "%laneid":
                return lane
            return int(token)

        for op, d, a, b in prog_lines:
            x, y = value(a), value(b)
            regs[d] = {
                "add": x + y, "sub": x - y, "mul": x * y,
                "min": min(x, y), "max": max(x, y),
                "and": x & y, "or": x | y, "xor": x ^ y,
            }[op]
        results[t] = dict(regs)
    return results


@given(st.lists(lines, min_size=1, max_size=25))
@settings(max_examples=50, deadline=None)
def test_engine_matches_naive_interpreter(prog_lines):
    body = "\n".join(f"{op}.s32 ${d}, {a}, {b}" for op, d, a, b in prog_lines)
    # Store every register so the comparison reads committed state.
    stores = []
    for i, r in enumerate(REGS):
        stores.append(f"mul.u32 $__o{i}, %tid.y, %ntid.x")
        stores.append(f"add.u32 $__o{i}, $__o{i}, %tid.x")
        stores.append(f"mad.u32 $__o{i}, $__o{i}, 4, {i * 64}")
        stores.append(f"add.u32 $__o{i}, $__o{i}, %param.out")
        stores.append(f"st.global.s32 [$__o{i}], ${r}")
    src = ".param out\n" + body + "\n" + "\n".join(stores) + "\nexit"

    prog = assemble(src)
    mem = GlobalMemory(4096)
    out = mem.alloc(256)
    launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(*BLOCK), warp_size=WARP)
    run_functional(prog, launch, mem, params={"out": out})

    expected = _naive_eval(prog_lines)
    for i, r in enumerate(REGS):
        got = mem.read_array(out + i * 64, N_THREADS, dtype=np.int64)
        want = [expected[t][r] for t in range(N_THREADS)]
        assert got.tolist() == want, f"register {r} diverged"
