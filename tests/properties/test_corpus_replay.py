"""Corpus replay + generator health for the differential fuzzer.

Every committed ``tests/corpus/*.kernel.json`` program is a previously
shrunk counterexample (or a hand-seeded adversarial case) pinning a bug
the oracle stack once caught; replaying each through all four oracles
keeps those bugs fixed forever.  The generator-health tests guard the
fuzzer itself: if the by-construction validity rules rot, the campaign
silently burns its budget on discarded candidates.
"""

import pytest

from repro.fuzz import ORACLES, check_spec, corpus_specs
from repro.fuzz.driver import _corpus_name
from repro.fuzz.oracles import OracleFailure

CORPUS = list(corpus_specs())
CORPUS_IDS = [spec.name for _, spec in CORPUS]


class TestCorpusReplay:
    def test_corpus_is_populated(self):
        """The ISSUE-8 acceptance floor: at least five pinned programs."""
        assert len(CORPUS) >= 5

    def test_corpus_names_match_files(self):
        for path, spec in CORPUS:
            assert path.endswith(f"{spec.name}.kernel.json")

    @pytest.mark.parametrize(("path", "spec"), CORPUS, ids=CORPUS_IDS)
    @pytest.mark.parametrize("oracle", list(ORACLES))
    def test_corpus_program_passes_oracle(self, path, spec, oracle):
        """Each pinned program must pass each differential oracle."""
        ORACLES[oracle](spec)

    @pytest.mark.parametrize(("path", "spec"), CORPUS, ids=CORPUS_IDS)
    def test_corpus_program_assembles_and_lints(self, path, spec):
        from repro.staticlib.lint import lint_program

        report = lint_program(spec.program())
        assert report.ok, [str(f) for f in report.errors]


class TestGeneratorHealth:
    def test_raw_generator_validity_rates(self):
        """Everything the generator emits must assemble, and nearly
        everything must pass the linter — the ``assume`` filter is a
        backstop, not the workhorse."""
        pytest.importorskip("hypothesis")
        from repro.fuzz import generator_health

        stats = generator_health(seed=0, samples=60)
        assert stats["samples"] == 60
        assert stats["assemble_rate"] == 1.0, stats["errors"]
        assert stats["lint_rate"] >= 0.9, stats["errors"]

    def test_filtered_strategy_yields_lint_clean_specs(self):
        pytest.importorskip("hypothesis")
        from hypothesis import HealthCheck, Phase, given, settings
        from hypothesis import seed as hyp_seed

        from repro.fuzz.generate import kernel_specs
        from repro.staticlib.lint import lint_program

        seen = []

        @settings(max_examples=10, deadline=None, database=None,
                  suppress_health_check=list(HealthCheck),
                  phases=(Phase.generate,))
        @hyp_seed(3)
        @given(spec=kernel_specs())
        def _sample(spec):
            seen.append(spec)
            assert lint_program(spec.program()).ok

        _sample()
        assert len(seen) >= 10

    def test_campaign_green_on_small_budget(self):
        pytest.importorskip("hypothesis")
        from repro.fuzz import fuzz_campaign

        report = fuzz_campaign(seed=1, budget=5, save=False)
        assert report.ok
        assert report.examples == 5

    def test_shrinking_is_deterministic_under_fixed_seed(self):
        """Same seed + same (synthetic) failing oracle ⇒ the exact same
        shrunk counterexample, twice — the campaign keeps no state
        between runs (the hypothesis database is disabled)."""
        pytest.importorskip("hypothesis")
        from repro.fuzz import fuzz_campaign

        def barrier_hater(spec):
            if "bar.sync" in spec.source:
                raise OracleFailure("synthetic", spec, "kernel uses bar.sync")

        reports = [
            fuzz_campaign(seed=7, budget=40, save=False,
                          oracles={"synthetic": barrier_hater})
            for _ in range(2)
        ]
        assert all(not r.ok for r in reports), "seed 7 must hit a barrier kernel"
        first, second = (r.failure.spec for r in reports)
        assert first.source == second.source
        assert first.block_dim == second.block_dim
        assert first.grid_dim == second.grid_dim
        assert first.data_seed == second.data_seed
        # The shrunk reproducer is minimal: exactly one offending line.
        assert first.source.count("bar.sync") == 1
        # And its corpus name is content-derived, so re-saving the same
        # bug overwrites the same pin instead of piling up duplicates.
        assert _corpus_name(reports[0].failure) == _corpus_name(reports[1].failure)

    def test_save_failure_round_trips(self, tmp_path):
        pytest.importorskip("hypothesis")
        from repro.fuzz import fuzz_campaign, load_spec, save_failure

        def always_fails(spec):
            raise OracleFailure("synthetic", spec, "unconditional")

        report = fuzz_campaign(seed=0, budget=3, save=False,
                               oracles={"synthetic": always_fails})
        assert not report.ok
        path = save_failure(report.failure, str(tmp_path))
        loaded = load_spec(path)
        assert loaded.source == report.failure.spec.source
        assert loaded.note.startswith("synthetic:")
        # The reloaded spec replays through the real oracle stack.
        check_spec(loaded)
