"""Property-based tests on the rename unit's invariants.

Random but *valid* event sequences (the leader writes before followers
skip; counts advance one instance at a time) must preserve:

- the freelist never leaks or duplicates physical registers;
- a warp always reads the value of the last write it observed;
- reclaimed versions are never readable.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.rename import RegisterRenameUnit

N_WARPS = 4
KEYS = [("r", "a"), ("r", "b"), ("p", "q0")]


class RenameMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.unit = RegisterRenameUnit(num_warps=N_WARPS, freelist_size=6)
        # Reference model: per (warp, key) the value the warp must read,
        # and per key the list of instance values.
        self.instances = {k: [] for k in KEYS}          # key -> [values]
        self.warp_pos = {(w, k): 0 for w in range(N_WARPS) for k in KEYS}
        self.private = set()                            # (warp, key) reads private
        self.on_path = set(range(N_WARPS))

    def _value_for(self, key, instance):
        return np.full(4, hash((key, instance)) % 1000, dtype=np.int64)

    @rule(key=st.sampled_from(KEYS), warp=st.integers(0, N_WARPS - 1))
    def leader_creates_instance(self, key, warp):
        """A warp on the path leads the next instance it needs."""
        if warp not in self.on_path or not self.unit.can_allocate():
            return
        pos = self.warp_pos[(warp, key)]
        if pos != len(self.instances[key]):
            return  # only the front-running warp can lead a new instance
        version = self.unit.reserve_version(warp, key)
        assert version == pos + 1
        value = self._value_for(key, pos)
        self.unit.leader_write(
            warp, key, version, value, key[0] == "p", sorted(self.on_path)
        )
        self.instances[key].append(value)
        self.warp_pos[(warp, key)] = pos + 1
        self.private.add((warp, key))  # leader reads its own private copy

    @rule(key=st.sampled_from(KEYS), warp=st.integers(0, N_WARPS - 1))
    def follower_skips(self, key, warp):
        if warp not in self.on_path:
            return
        pos = self.warp_pos[(warp, key)]
        if pos >= len(self.instances[key]):
            return  # nothing to skip yet
        vv = self.unit.follower_skip(warp, key)
        assert vv.version == pos + 1
        assert np.array_equal(vv.value, self.instances[key][pos])
        self.warp_pos[(warp, key)] = pos + 1
        self.private.discard((warp, key))

    @rule(key=st.sampled_from(KEYS), warp=st.integers(0, N_WARPS - 1))
    def private_instance(self, key, warp):
        """The warp executes its next instance privately (bypass)."""
        if warp not in self.on_path:
            return
        pos = self.warp_pos[(warp, key)]
        if pos >= len(self.instances[key]):
            return
        self.unit.private_instance_write(warp, key)
        self.warp_pos[(warp, key)] = pos + 1
        self.private.add((warp, key))

    @rule(warp=st.integers(0, N_WARPS - 1))
    def warp_leaves_path(self, warp):
        if warp in self.on_path and len(self.on_path) > 1:
            self.unit.clear_warp(warp)
            self.on_path.discard(warp)
            for key in KEYS:
                self.private.add((warp, key))

    @invariant()
    def reads_are_consistent(self):
        for w in range(N_WARPS):
            for key in KEYS:
                vv = self.unit.read(w, key)
                pos = self.warp_pos[(w, key)]
                if vv is not None:
                    assert (w, key) not in self.private
                    assert vv.version == pos
                    assert np.array_equal(vv.value, self.instances[key][pos - 1])

    @invariant()
    def freelist_conserved(self):
        u = self.unit
        assert len(u._freelist) + u.live_versions == u.freelist_size
        assert len(set(u._freelist)) == len(u._freelist)


TestRenameMachine = RenameMachine.TestCase
TestRenameMachine.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
