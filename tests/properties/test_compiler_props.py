"""Property-based tests on the compiler pass and promotion.

The key safety property: the static analysis is *non-speculative* —
every instruction it marks definitely redundant (after promotion) truly
produces identical values in every warp of a TB when warps share a
control-flow history.  We check it by executing random straight-line
programs and comparing per-warp outputs for every promoted-DR PC.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Dim3,
    GlobalMemory,
    LaunchConfig,
    Marking,
    Tracer,
    analyze_program,
    assemble,
    promote_markings,
    run_functional,
)
from repro.core.taxonomy import RedundancyClass, classify_group

REGS = ["$r0", "$r1", "$r2", "$r3"]
SOURCES = REGS + ["%tid.x", "%tid.y", "%ctaid.x", "%ntid.x", "7", "3"]

ops = st.sampled_from(["add.u32", "sub.s32", "mul.u32", "min.s32", "max.s32", "xor.u32"])
lines = st.builds(
    lambda op, d, a, b: f"{op} {d}, {a}, {b}",
    ops,
    st.sampled_from(REGS),
    st.sampled_from(SOURCES),
    st.sampled_from(SOURCES),
)


@given(st.lists(lines, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_promoted_dr_marks_are_sound(body):
    src = "\n".join(body) + "\nexit"
    prog = assemble(src)
    analysis = analyze_program(prog)
    launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8, 4), warp_size=8)
    promoted = promote_markings(analysis.instruction_markings, launch)

    tracer = Tracer()
    run_functional(prog, launch, GlobalMemory(256), params={}, tracer=tracer)
    groups = dict(tracer.trace.grouped_by_tb())

    for inst in prog.instructions:
        if promoted.get(inst.pc) is not Marking.REDUNDANT:
            continue
        if inst.dest_register() is None:
            continue
        records = groups[(0, inst.pc, 0)]
        cls = classify_group(records, launch.warps_per_block)
        assert cls is not RedundancyClass.NON_REDUNDANT, (
            f"DR-marked {inst} produced non-redundant values"
        )


@given(st.lists(lines, min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_marking_is_monotone_under_demotion(body):
    """1D promotion never yields a stronger marking than 2D promotion."""
    src = "\n".join(body) + "\nexit"
    prog = assemble(src)
    analysis = analyze_program(prog)
    two_d = promote_markings(
        analysis.instruction_markings,
        LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 4)),
    )
    one_d = promote_markings(
        analysis.instruction_markings,
        LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(64)),
    )
    for pc in two_d:
        assert one_d[pc] <= two_d[pc]


@given(st.lists(lines, min_size=1, max_size=15))
@settings(max_examples=30, deadline=None)
def test_fixpoint_is_stable(body):
    """Re-running the analysis reproduces identical markings."""
    src = "\n".join(body) + "\nexit"
    prog = assemble(src)
    a = analyze_program(prog).instruction_markings
    b = analyze_program(prog).instruction_markings
    assert a == b
