"""Property-based round-trip tests for the 64-bit encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble
from repro.isa.encoding import decode_program, encode_program

registers = st.sampled_from(["$r0", "$r1", "$acc", "$ofs3", "$t"])
immediates = st.integers(min_value=-128, max_value=127).map(str)
specials = st.sampled_from(["%tid.x", "%tid.y", "%ctaid.x", "%ntid.x", "%laneid"])
operands = st.one_of(registers, immediates, specials)

alu_lines = st.builds(
    lambda op, d, a, b: f"{op} {d}, {a}, {b}",
    st.sampled_from(["add.u32", "sub.s32", "mul.u32", "and.u32", "min.s32", "xor.u32"]),
    registers,
    operands,
    operands,
)
unary_lines = st.builds(
    lambda op, d, a: f"{op} {d}, {a}",
    st.sampled_from(["mov.u32", "neg.s32", "abs.s32", "not.u32", "cvt.f32"]),
    registers,
    operands,
)
mem_lines = st.builds(
    lambda d, b, off: f"ld.global.s32 {d}, [{b} + {off}]",
    registers,
    registers,
    st.integers(min_value=0, max_value=1024).filter(lambda x: x % 4 == 0),
)
lines = st.one_of(alu_lines, unary_lines, mem_lines)


@given(st.lists(lines, min_size=1, max_size=24))
@settings(max_examples=60, deadline=None)
def test_encode_decode_roundtrip(body):
    src = "\n".join(body) + "\nexit"
    prog = assemble(src)
    back = decode_program(encode_program(prog))
    assert len(back) == len(prog)
    for a, b in zip(prog.instructions, back.instructions):
        assert a.opcode == b.opcode
        assert a.dtype == b.dtype
        assert a.dst == b.dst
        assert a.srcs == b.srcs
        assert a.mem == b.mem


@given(st.lists(lines, min_size=1, max_size=16), st.integers(0, 2))
@settings(max_examples=40, deadline=None)
def test_hints_roundtrip_without_altering_instructions(body, hint):
    src = "\n".join(body) + "\nexit"
    prog = assemble(src)
    enc = encode_program(prog, {i.pc: hint for i in prog.instructions})
    for i in prog.instructions:
        assert enc.hint_of(i.pc) == hint
    back = decode_program(enc)
    for a, b in zip(prog.instructions, back.instructions):
        assert a.opcode == b.opcode and a.srcs == b.srcs
