"""Property-based end-to-end tests: random launch geometries.

The central safety property of the whole system: for ANY valid launch
shape, a DARSIE-enabled timing run produces memory bit-identical to a
plain functional run — promotion, renaming, synchronization, and load
invalidation may change *when* things execute, never *what* they
compute.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DarsieFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    analyze_program,
    assemble,
    run_functional,
    simulate,
    small_config,
)

SRC = """
.param tab
.param out
.param n
    mul.u32        $a, %tid.x, 4
    add.u32        $a, $a, %param.tab
    mov.u32        $acc, 0
    mov.u32        $i, 0
loop:
    ld.global.s32  $v, [$a]
    add.u32        $acc, $acc, $v
    add.u32        $a, $a, 4
    add.u32        $i, $i, 1
    setp.lt.u32    $p0, $i, %param.n
@$p0 bra loop
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    mul.u32        $g, %ctaid.x, %ntid.x
    mul.u32        $g, $g, %ntid.y
    add.u32        $o, $o, $g
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $acc
    exit
"""

CFG = small_config(num_sms=1)

shapes = st.sampled_from(
    [(4, 2), (8, 4), (16, 2), (16, 16), (32, 2), (12, 4), (64, 1), (128, 1), (48, 2)]
)


@given(shape=shapes, grid=st.integers(1, 3), n=st.integers(1, 5), seed=st.integers(0, 99))
@settings(max_examples=25, deadline=None)
def test_darsie_matches_functional_for_any_launch(shape, grid, n, seed):
    prog = assemble(SRC)
    analysis = analyze_program(prog)
    launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(*shape))
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 1000, size=shape[0] + n + 1)

    mem_f = GlobalMemory(1 << 14)
    pf = {"tab": mem_f.alloc_array(data), "out": mem_f.alloc(1024), "n": n}
    run_functional(prog, launch, mem_f, params=pf)

    mem_d = GlobalMemory(1 << 14)
    pd = {"tab": mem_d.alloc_array(data), "out": mem_d.alloc(1024), "n": n}
    simulate(prog, launch, mem_d, params=pd, config=CFG,
             frontend_factory=lambda: DarsieFrontend(analysis))
    assert np.array_equal(mem_f.words, mem_d.words)
