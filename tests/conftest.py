"""Shared fixtures: canonical kernels and launch shapes."""

import numpy as np
import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble
from repro.harness import parallel


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the sweep result cache at a per-session temp directory.

    Unit tests must exercise the real simulation paths — a stale
    on-disk cache under ``results/.cache`` could otherwise mask
    regressions (and test runs would pollute the repo checkout).
    """
    parallel.configure(cache_dir=str(tmp_path_factory.mktemp("repro-cache")))
    yield

#: The Figure 3 kernel: array read indexed by tid.x.
FIGURE3_SRC = """
.kernel figure3
.param base
.param out
    mul.u32        $r1, %tid.x, 4
    add.u32        $r2, $r1, %param.base
    ld.global.s32  $r3, [$r2]
    mul.u32        $t, %tid.y, %ntid.x
    add.u32        $t, $t, %tid.x
    shl.u32        $t, $t, 2
    add.u32        $t, $t, %param.out
    st.global.s32  [$t], $r3
    exit
"""

#: A loop kernel with a TB-redundant chain and a vector accumulator.
LOOP_SRC = """
.kernel loop
.param tab
.param out
.param n
    mul.u32        $a, %tid.x, 4
    add.u32        $a, $a, %param.tab
    mov.u32        $acc, 0
    mov.u32        $i, 0
loop:
    ld.global.s32  $v, [$a]
    add.u32        $acc, $acc, $v
    add.u32        $a, $a, 128
    add.u32        $i, $i, 1
    setp.lt.u32    $p0, $i, %param.n
@$p0 bra loop
    mul.u32        $o, %tid.y, %ntid.x
    add.u32        $o, $o, %tid.x
    mul.u32        $b, %ctaid.x, %ntid.x
    mul.u32        $b, $b, %ntid.y
    add.u32        $o, $o, $b
    shl.u32        $o, $o, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $acc
    exit
"""

#: A kernel with genuine SIMT divergence (per-lane branch).
DIVERGE_SRC = """
.kernel diverge
.param out
    mov.u32        $t, %tid.x
    and.u32        $odd, $t, 1
    setp.eq.u32    $p0, $odd, 1
    mov.u32        $r, 0
@$p0 bra odd_path
    add.u32        $r, $r, 100
    bra join
odd_path:
    add.u32        $r, $r, 200
join:
    shl.u32        $o, $t, 2
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $r
    exit
"""


@pytest.fixture
def figure3_program():
    return assemble(FIGURE3_SRC)


@pytest.fixture
def loop_program():
    return assemble(LOOP_SRC)


@pytest.fixture
def diverge_program():
    return assemble(DIVERGE_SRC)


@pytest.fixture
def launch_2d():
    return LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(4, 2), warp_size=4)


@pytest.fixture
def launch_1d():
    return LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8), warp_size=4)


@pytest.fixture
def memory():
    return GlobalMemory(1 << 14)


def figure3_setup(memory):
    """Allocate Figure 3's array; returns (params, expected 2D outputs)."""
    data = np.array([7, 3, 0, 90, 55, 8, 22, 1], dtype=np.int64)
    base = memory.alloc_array(data)
    out = memory.alloc(16)
    return {"base": base, "out": out}, data
