"""Reaching definitions, def-use chains and liveness."""

from repro import assemble
from repro.staticlib import (
    ENTRY_PC,
    Definition,
    Liveness,
    ReachingDefinitions,
    find_uninitialized_reads,
)


class TestReachingDefinitions:
    def test_straight_line_kill(self):
        prog = assemble("""
            mov.u32 $a, 1
            mov.u32 $a, 2
            add.u32 $b, $a, 1
            exit
        """)
        rd = ReachingDefinitions(prog)
        # Only the second write of $a reaches the read.
        assert rd.reaching_defs_of(0x10, ("r", "a")) == {Definition(0x08, ("r", "a"))}

    def test_entry_definition_reaches_unwritten_var(self):
        prog = assemble("add.u32 $b, $a, 1\nexit")
        rd = ReachingDefinitions(prog)
        assert Definition(ENTRY_PC, ("r", "a")) in rd.at(0x00)

    def test_guarded_write_does_not_kill(self):
        prog = assemble("""
            mov.u32 $a, 1
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 mov.u32 $a, 2
            add.u32 $b, $a, 1
            exit
        """)
        rd = ReachingDefinitions(prog)
        reaching = rd.reaching_defs_of(0x18, ("r", "a"))
        # Both the unguarded and the guarded write reach the read.
        assert reaching == {
            Definition(0x00, ("r", "a")),
            Definition(0x10, ("r", "a")),
        }

    def test_merge_over_diamond(self, diverge_program):
        rd = ReachingDefinitions(diverge_program)
        prog = diverge_program
        store = next(i for i in prog.instructions if i.is_store)
        defs_of_r = rd.reaching_defs_of(store.pc, ("r", "r"))
        # $r: the even-arm and odd-arm adds both reach the join; the
        # unguarded `mov $r, 0` before the branch reaches neither path.
        pcs = {d.pc for d in defs_of_r}
        from repro.staticlib.reaching import var_reads

        # The two arm adds both define and read $r; `mov $r, 0` only
        # defines it (and is killed by both arms).
        arm_adds = {
            i.pc for i in prog.instructions
            if i.dest_register() is not None
            and i.dest_register().name == "r"
            and ("r", "r") in var_reads(i)
        }
        assert pcs == arm_adds

    def test_loop_back_edge(self, loop_program):
        rd = ReachingDefinitions(loop_program)
        prog = loop_program
        load = next(i for i in prog.instructions if i.is_load)
        # $a at the loop head: defined both before the loop and by the
        # in-loop increment, so both definitions reach the load.
        pcs = {d.pc for d in rd.reaching_defs_of(load.pc, ("r", "a"))}
        assert len(pcs) == 2
        assert all(pc != ENTRY_PC for pc in pcs)

    def test_def_use_chains(self):
        prog = assemble("""
            mov.u32 $a, 1
            add.u32 $b, $a, 1
            add.u32 $c, $a, 2
            exit
        """)
        chains = ReachingDefinitions(prog).def_use_chains()
        assert set(chains[Definition(0x00, ("r", "a"))]) == {0x08, 0x10}


class TestUninitializedReads:
    def test_flags_never_written_register(self):
        reads = find_uninitialized_reads(assemble("add.u32 $b, $a, 1\nexit"))
        assert [(u.pc, u.var) for u in reads] == [(0x00, ("r", "a"))]

    def test_flags_path_sensitive_miss(self):
        # $v is only written on the taken path; the fallthrough path
        # reads it unwritten.
        prog = assemble("""
            setp.eq.u32 $p0, %ctaid.x, 0
        @$p0 bra skip
            mov.u32 $v, 7
        skip:
            add.u32 $w, $v, 1
            exit
        """)
        reads = find_uninitialized_reads(prog)
        assert any(u.var == ("r", "v") for u in reads)

    def test_clean_kernel_has_none(self, figure3_program, loop_program, diverge_program):
        for prog in (figure3_program, loop_program, diverge_program):
            assert find_uninitialized_reads(prog) == ()

    def test_guarded_reduction_idiom_is_covered(self):
        # The Table 1 idiom: load under a guard, consume under the same
        # guard.  Every lane that reads did write — not flagged.
        prog = assemble("""
        .param base
            setp.lt.u32 $p0, %tid.x, 2
        @$p0 ld.global.s32 $a, [%param.base]
        @$p0 add.u32 $b, $a, 1
            exit
        """)
        assert find_uninitialized_reads(prog) == ()

    def test_opposite_polarity_not_covered(self):
        prog = assemble("""
            setp.lt.u32 $p0, %tid.x, 2
        @$p0 mov.u32 $a, 1
        @!$p0 add.u32 $b, $a, 1
            exit
        """)
        reads = find_uninitialized_reads(prog)
        assert any(u.var == ("r", "a") for u in reads)

    def test_predicate_redefinition_invalidates_coverage(self):
        # The guard is recomputed between write and read: the lane masks
        # may differ, so the read is no longer provably covered.
        prog = assemble("""
            setp.lt.u32 $p0, %tid.x, 2
        @$p0 mov.u32 $a, 1
            setp.lt.u32 $p0, %tid.x, 3
        @$p0 add.u32 $b, $a, 1
            exit
        """)
        reads = find_uninitialized_reads(prog)
        assert any(u.var == ("r", "a") for u in reads)


class TestLiveness:
    def test_straight_line(self):
        prog = assemble("""
            mov.u32 $a, 1
            add.u32 $b, $a, 1
            add.u32 $c, $b, 1
            exit
        """)
        lv = Liveness(prog)
        assert ("r", "a") in lv.live_out_at(0x00)
        assert ("r", "a") in lv.live_in_at(0x08)
        assert ("r", "a") not in lv.live_out_at(0x08)  # dead after last use
        assert ("r", "c") not in lv.live_out_at(0x10)  # never read

    def test_live_across_store(self):
        prog = assemble("""
        .param out
            mov.u32 $k, 7
            st.global.s32 [%param.out], $k
            add.u32 $z, $k, 1
            exit
        """)
        lv = Liveness(prog)
        assert ("r", "k") in lv.live_out_at(0x08)

    def test_loop_carried_liveness(self, loop_program):
        lv = Liveness(loop_program)
        prog = loop_program
        load = next(i for i in prog.instructions if i.is_load)
        # $acc is written before the loop, updated inside, read after:
        # live around the back edge.
        assert ("r", "acc") in lv.live_in_at(load.pc)

    def test_guarded_write_does_not_kill_liveness(self):
        prog = assemble("""
            mov.u32 $a, 1
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 mov.u32 $a, 2
            add.u32 $b, $a, 1
            exit
        """)
        lv = Liveness(prog)
        # $a stays live *into* the guarded write: false-guard lanes still
        # carry the old value to the read.
        assert ("r", "a") in lv.live_in_at(0x10)
