"""The kernel linter: every rule exercised by an injected mutant, and
every registered Table 1 kernel certified clean."""

import pytest

from repro import ALL_ABBRS, assemble, build_workload
from repro.staticlib import RULES, lint_program, lint_workload


def rules_hit(report):
    return {f.rule for f in report.findings}


class TestRuleCatalogue:
    def test_every_rule_has_severity_and_description(self):
        for rule, (severity, description) in RULES.items():
            assert severity in ("error", "warning"), rule
            assert description

    def test_findings_reference_known_rules(self):
        report = lint_program(assemble("add.u32 $b, $a, 1\nexit"))
        for finding in report.findings:
            assert finding.rule in RULES
            assert finding.severity == RULES[finding.rule][0]


class TestUninitializedReadRule:
    def test_read_of_unwritten_register(self):
        report = lint_program(assemble("add.u32 $b, $a, 1\nexit"))
        assert not report.ok
        hits = report.by_rule("uninitialized-read")
        assert len(hits) == 1
        assert hits[0].pc == 0x00
        assert "$a" in hits[0].message

    def test_read_of_unwritten_predicate(self):
        report = lint_program(assemble("@$p9 mov.u32 $a, 1\nexit"))
        hits = report.by_rule("uninitialized-read")
        assert hits and "predicate" in hits[0].message

    def test_excerpt_is_figure6_style(self):
        report = lint_program(assemble("""
            mov.u32 $x, %ctaid.x
            add.u32 $b, $a, 1
            exit
        """))
        (finding,) = report.by_rule("uninitialized-read")
        assert ">>" in finding.excerpt      # pointer at the offending PC
        assert "DR" in finding.excerpt      # marking column present
        assert "0x0008" in finding.excerpt


class TestInvalidBranchTargetRule:
    def test_branch_past_end_mutant(self, loop_program):
        branch = next(i for i in loop_program.instructions if i.is_branch)
        branch.target_pc = loop_program.end_pc + 0x40  # corrupt in place
        report = lint_program(loop_program)
        hits = report.by_rule("invalid-branch-target")
        assert len(hits) == 1
        assert hits[0].pc == branch.pc
        assert hits[0].severity == "error"

    def test_misaligned_target_mutant(self, diverge_program):
        branch = next(i for i in diverge_program.instructions if i.is_branch)
        branch.target_pc = branch.target_pc + 3  # between instructions
        report = lint_program(diverge_program)
        assert report.by_rule("invalid-branch-target")


class TestFallthroughEndRule:
    def test_predicated_final_exit_mutant(self):
        # The assembler always appends a trailing exit, so inject the
        # defect after assembly: guard the final exit, and the lanes
        # whose guard is false run off the end of the program.
        prog = assemble("""
            setp.eq.u32 $p0, %ctaid.x, 0
            mov.u32 $a, 1
            exit
        """)
        prog.instructions[-1].guard = prog.instructions[0].dest_predicate()
        report = lint_program(prog)
        hits = report.by_rule("fallthrough-end")
        assert len(hits) == 1
        assert hits[0].pc == prog.instructions[-1].pc
        assert hits[0].severity == "error"

    def test_exit_on_every_path_is_clean(self, diverge_program):
        report = lint_program(diverge_program)
        assert not report.by_rule("fallthrough-end")


class TestUnreachableCodeRule:
    def test_dead_block_after_unconditional_branch(self):
        report = lint_program(assemble("""
            bra done
            mov.u32 $dead, 1
        done:
            exit
        """))
        hits = report.by_rule("unreachable-code")
        assert len(hits) == 1
        assert hits[0].pc == 0x08
        assert hits[0].severity == "warning"
        assert report.ok  # warnings alone do not fail a kernel


class TestDivergentBarrierRule:
    def test_barrier_under_lane_varying_branch(self):
        report = lint_program(assemble("""
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 bra skip
            bar.sync
        skip:
            exit
        """))
        hits = report.by_rule("divergent-barrier")
        assert len(hits) == 1
        assert hits[0].pc == 0x10
        assert "divergent region" in hits[0].message

    def test_barrier_under_tb_uniform_branch_is_clean(self):
        # All lanes agree on a blockIdx guard: no divergence, no finding.
        report = lint_program(assemble("""
            setp.eq.u32 $p0, %ctaid.x, 0
        @$p0 bra skip
            bar.sync
        skip:
            exit
        """))
        assert not report.by_rule("divergent-barrier")

    def test_barrier_after_reconvergence_is_clean(self):
        report = lint_program(assemble("""
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 bra skip
            mov.u32 $a, 1
        skip:
            bar.sync
            exit
        """))
        assert not report.by_rule("divergent-barrier")


STORE_HAZARD_SRC = """
.kernel hazard
.param base
.param out
    ld.global.s32  $k, [%param.base]
    mul.u32        $o, %tid.y, 4
    add.u32        $o, $o, %param.out
    st.global.s32  [$o], $k
    st.global.s32  [$o], $k
    exit
"""


class TestStoreInvalidationRule:
    def test_vector_store_while_dr_load_live(self):
        report = lint_program(assemble(STORE_HAZARD_SRC))
        hits = report.by_rule("store-invalidation")
        assert hits
        assert hits[0].severity == "warning"
        assert hits[0].pc == 0x18  # first store: $k still live after it
        assert "load invalidation" in hits[0].message

    def test_different_space_is_clean(self):
        # Shared-memory store cannot alias the global DR load.
        report = lint_program(assemble("""
        .param base
            ld.global.s32  $k, [%param.base]
            mul.u32        $o, %tid.y, 4
            st.shared.s32  [$o], $k
            st.shared.s32  [$o], $k
            exit
        """))
        assert not report.by_rule("store-invalidation")

    def test_no_finding_without_skippable_load(self):
        # The load address follows tid.y, so the load is vector: nothing
        # is skipped, nothing to invalidate.
        report = lint_program(assemble("""
        .param base
            mul.u32        $a, %tid.y, 4
            add.u32        $a, $a, %param.base
            ld.global.s32  $k, [$a]
            st.global.s32  [$a], $k
            st.global.s32  [$a], $k
            exit
        """))
        assert not report.by_rule("store-invalidation")


class TestRegisteredKernelsClean:
    @pytest.mark.parametrize("abbr", ALL_ABBRS)
    def test_kernel_lints_clean(self, abbr):
        report = lint_workload(build_workload(abbr, "tiny"))
        assert report.ok, report.render()
        assert not report.warnings, report.render()
