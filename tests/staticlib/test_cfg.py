"""CFG construction, reachability, traversal order and dominators."""

from repro import assemble
from repro.staticlib import (
    EXIT_BLOCK,
    ControlFlowGraph,
    dominates,
    dominator_tree,
    postdominator_tree,
)


class TestStraightLine:
    def test_single_block(self, figure3_program):
        cfg = ControlFlowGraph.from_program(figure3_program)
        assert len(cfg.blocks) == 1
        assert cfg.succ[0] == (EXIT_BLOCK,)
        assert cfg.pred[EXIT_BLOCK] == (0,)
        assert cfg.reachable == frozenset({0})
        assert cfg.rpo == (0,)
        assert not cfg.fallthrough_exit
        assert not cfg.broken_branch_pcs

    def test_every_pc_reachable(self, figure3_program):
        cfg = ControlFlowGraph.from_program(figure3_program)
        for inst in figure3_program.instructions:
            assert cfg.is_reachable_pc(inst.pc)


class TestLoop:
    def test_loop_edges(self, loop_program):
        cfg = ControlFlowGraph.from_program(loop_program)
        # entry -> body; body -> {body, tail}; tail -> exit
        assert len(cfg.blocks) == 3
        assert cfg.succ[0] == (1,)
        assert set(cfg.succ[1]) == {1, 2}
        assert cfg.succ[2] == (EXIT_BLOCK,)
        assert set(cfg.pred[1]) == {0, 1}

    def test_loop_rpo_and_dominators(self, loop_program):
        cfg = ControlFlowGraph.from_program(loop_program)
        assert cfg.rpo == (0, 1, 2)
        idom = dominator_tree(cfg)
        assert idom[0] == 0
        assert idom[1] == 0
        assert idom[2] == 1
        assert dominates(idom, 0, 2)
        assert not dominates(idom, 2, 1)

    def test_loop_postdominators(self, loop_program):
        cfg = ControlFlowGraph.from_program(loop_program)
        ipdom = postdominator_tree(cfg)
        assert ipdom[2] == EXIT_BLOCK
        assert ipdom[1] == 2
        assert ipdom[0] == 1
        assert dominates(ipdom, 2, 0)


class TestDiamond:
    def test_diverge_edges(self, diverge_program):
        cfg = ControlFlowGraph.from_program(diverge_program)
        # B0 -> {even (fallthrough), odd (taken)}; both -> join -> exit
        assert len(cfg.blocks) == 4
        assert set(cfg.succ[0]) == {1, 2}
        assert cfg.succ[1] == (3,)
        assert cfg.succ[2] == (3,)
        assert cfg.succ[3] == (EXIT_BLOCK,)
        assert set(cfg.pred[3]) == {1, 2}

    def test_diamond_dominance(self, diverge_program):
        cfg = ControlFlowGraph.from_program(diverge_program)
        idom = dominator_tree(cfg)
        ipdom = postdominator_tree(cfg)
        # The join block is dominated by the fork, not by either arm...
        assert idom[3] == 0
        # ...and post-dominates the fork and both arms.
        assert ipdom[0] == 3
        assert ipdom[1] == 3
        assert ipdom[2] == 3

    def test_region_between_is_the_divergent_region(self, diverge_program):
        cfg = ControlFlowGraph.from_program(diverge_program)
        prog = diverge_program
        branch = next(i for i in prog.instructions if i.is_branch)
        rpc = prog.reconvergence_pc(branch.pc)
        region = cfg.region_between(branch.pc, rpc)
        assert region == frozenset({1, 2})  # both arms, not the join

    def test_region_without_stop_extends_to_exit(self, diverge_program):
        cfg = ControlFlowGraph.from_program(diverge_program)
        branch = next(i for i in diverge_program.instructions if i.is_branch)
        assert cfg.region_between(branch.pc, None) == frozenset({1, 2, 3})


class TestMalformedPrograms:
    def test_assembler_supplies_trailing_exit(self):
        # The assembler appends an implicit `exit`, so a source with no
        # trailing exit still cannot fall off the end.
        prog = assemble("mov.u32 $a, 1\nadd.u32 $b, $a, 1")
        cfg = ControlFlowGraph.from_program(prog)
        assert prog.instructions[-1].is_exit
        assert not cfg.fallthrough_exit

    def test_fallthrough_off_end_mutant(self):
        # Corrupt the final exit into a predicated one: lanes whose
        # guard is false fall off the end of the instruction stream.
        prog = assemble("""
            setp.eq.u32 $p0, %ctaid.x, 0
            mov.u32 $a, 1
            exit
        """)
        last = prog.instructions[-1]
        last.guard = prog.instructions[0].dest_predicate()
        cfg = ControlFlowGraph.from_program(prog)
        final_block = prog.block_of(last.pc).index
        assert final_block in cfg.fallthrough_exit

    def test_predicated_exit_has_both_edges(self):
        prog = assemble("""
            setp.eq.u32 $p0, %ctaid.x, 0
        @$p0 exit
            mov.u32 $a, 1
            exit
        """)
        cfg = ControlFlowGraph.from_program(prog)
        exit_block = prog.block_of(0x08).index
        assert EXIT_BLOCK in cfg.succ[exit_block]
        assert prog.block_of(0x10).index in cfg.succ[exit_block]

    def test_broken_branch_target_tolerated(self):
        prog = assemble("""
            mov.u32 $a, 1
            bra done
        done:
            exit
        """)
        branch = next(i for i in prog.instructions if i.is_branch)
        branch.target_pc = 0x1234  # corrupt: not an instruction PC
        cfg = ControlFlowGraph.from_program(prog)
        assert cfg.broken_branch_pcs == (branch.pc,)

    def test_unreachable_block_excluded_from_rpo(self):
        prog = assemble("""
            bra done
            mov.u32 $dead, 1
        done:
            exit
        """)
        cfg = ControlFlowGraph.from_program(prog)
        dead = prog.block_of(0x08).index
        assert dead not in cfg.reachable
        assert dead not in cfg.rpo
        assert not cfg.is_reachable_pc(0x08)
        # Unreachable blocks are absent from the dominator tree entirely.
        assert dead not in dominator_tree(cfg)
