"""Marking soundness cross-checker: static DR vs. dynamic uniformity."""

import pytest

from repro import ALL_ABBRS, Marking, analyze_program, build_workload
from repro.staticlib import audit_all, audit_workload


class TestRealMarkingsAreSound:
    @pytest.mark.parametrize("abbr", ALL_ABBRS)
    def test_workload_audit_passes(self, abbr):
        audit = audit_workload(build_workload(abbr, "tiny"))
        assert audit.ok, audit.render()
        assert audit.dr_pcs > 0  # every kernel has some promoted-DR work
        assert audit.groups_checked > 0

    def test_audit_all_report(self):
        report = audit_all(scale="tiny", abbrs=("MM", "LIB"))
        assert report.ok
        assert len(report.audits) == 2
        assert "sound" in report.render()


class TestOverPromotionIsCaught:
    def _over_promoted(self, abbr="MM"):
        """Real markings with one vector value-producer forced to DR."""
        workload = build_workload(abbr, "tiny")
        analysis = analyze_program(workload.program)
        markings = dict(analysis.instruction_markings)
        victim = next(
            inst.pc
            for inst in workload.program.instructions
            if markings[inst.pc] is Marking.VECTOR
            and (inst.dest_register() is not None or inst.dest_predicate() is not None)
            and not inst.is_load
        )
        markings[victim] = Marking.REDUNDANT
        return workload, markings, victim

    def test_forced_dr_on_vector_instruction_violates(self):
        workload, markings, victim = self._over_promoted()
        audit = audit_workload(workload, markings=markings)
        assert not audit.ok
        assert any(v.pc == victim for v in audit.violations)

    def test_violation_reads_like_a_compiler_bug_report(self):
        workload, markings, victim = self._over_promoted()
        audit = audit_workload(workload, markings=markings)
        v = next(v for v in audit.violations if v.pc == victim)
        assert v.workload == "MM"
        assert v.marking == "DR"
        assert "compiler-pass bug" in v.message
        assert "uniform across all warps" in v.message
        rendered = audit.render()
        assert "VIOLATION" in rendered

    def test_report_ok_goes_false(self):
        workload, markings, _ = self._over_promoted()
        audit = audit_workload(workload, markings=markings)
        from repro.staticlib import SoundnessReport

        report = SoundnessReport(audits=[audit])
        assert not report.ok
        assert report.violations
        assert "violation" in report.render()
