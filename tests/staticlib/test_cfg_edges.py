"""CFG construction edge cases: self-loops, backward branches into block
interiors, single-instruction kernels — plus property-based checks over
randomly generated (linter-validated) programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import assemble
from repro.staticlib import EXIT_BLOCK, ControlFlowGraph, lint_program


class TestConcreteEdgeCases:
    def test_single_instruction_kernel(self):
        program = assemble("    exit\n", name="k")
        cfg = ControlFlowGraph.from_program(program)
        assert len(cfg.blocks) == 1
        assert cfg.succ[0] == (EXIT_BLOCK,)
        assert cfg.reachable == frozenset({0})
        assert cfg.rpo == (0,)

    def test_self_loop(self):
        src = """
    mov.u32        $i, 0
spin:
    add.u32        $i, $i, 1
    setp.lt.u32    $p0, $i, 10
@$p0 bra spin
    exit
"""
        program = assemble(src, name="k")
        cfg = ControlFlowGraph.from_program(program)
        spin = cfg.block_of_pc(program.labels["spin"]).index
        assert spin in cfg.succ[spin]
        assert spin in cfg.pred[spin]
        assert cfg.reachable == frozenset(b.index for b in program.blocks)

    def test_backward_branch_into_block_interior_splits_it(self):
        """A backward branch whose target is mid-straight-line code must
        force a block boundary exactly at the target."""
        src = """
    mov.u32        $i, 0
    add.u32        $a, $i, 1
mid:
    add.u32        $a, $a, 2
    add.u32        $a, $a, 3
    setp.lt.u32    $p0, $a, 100
@$p0 bra mid
    exit
"""
        program = assemble(src, name="k")
        cfg = ControlFlowGraph.from_program(program)
        target = program.labels["mid"]
        # the target is a block *leader*, not an interior pc
        assert any(b.start_pc == target for b in program.blocks)
        header = cfg.block_of_pc(target).index
        assert header != cfg.block_of_pc(0).index
        assert header in cfg.succ[header] or any(
            header in cfg.succ[b.index] for b in program.blocks
            if b.index != header
        )

    def test_unconditional_backward_branch_makes_tail_unreachable(self):
        src = """
top:
    add.u32        $a, $a, 1
    bra top
    mov.u32        $b, 7
    exit
"""
        program = assemble(src, name="k")
        cfg = ControlFlowGraph.from_program(program)
        tail = cfg.block_of_pc(program.labels["top"] + 2 * 8).index
        assert tail not in cfg.reachable
        assert not cfg.is_reachable_pc(program.instructions[-1].pc)


# -- property-based sweep ---------------------------------------------------

ARITH = ("add.u32        $a, $a, 1",
         "mul.u32        $a, $a, 3",
         "add.u32        $b, $a, 2")


@st.composite
def random_kernels(draw):
    """A small straight-line body with 0-2 guarded branches whose targets
    land on arbitrary instructions (backward, forward, or self)."""
    n = draw(st.integers(min_value=1, max_value=6))
    body = [draw(st.sampled_from(ARITH)) for _ in range(n)]
    n_branches = draw(st.integers(min_value=0, max_value=2))
    branch_at = draw(st.lists(st.integers(min_value=0, max_value=n),
                              min_size=n_branches, max_size=n_branches))
    targets = [draw(st.integers(min_value=0, max_value=n))
               for _ in range(n_branches)]
    lines = ["    mov.u32        $a, 0",
             "    setp.lt.u32    $p0, $a, 5"]
    # label every body slot so any target is addressable
    for idx, text in enumerate(body):
        lines.append(f"L{idx}:")
        lines.append(f"    {text}")
    lines.append(f"L{n}:")
    lines.append("    exit")
    for pos, tgt in sorted(zip(branch_at, targets), reverse=True):
        # insert after label L{pos} line; guarded so fallthrough survives
        insert_at = 2 + 2 * pos + 1
        lines.insert(insert_at, f"@$p0 bra L{tgt}")
    return "\n".join(lines) + "\n"


@given(random_kernels())
@settings(max_examples=60, deadline=None)
def test_cfg_invariants_hold_on_random_programs(src):
    program = assemble(src, name="rand")
    report = lint_program(program)
    # the linter is the validity filter: generated programs must never
    # trip the structural (malformed control flow) rules
    structural = [f for f in report.findings if "branch" in f.rule]
    assert structural == [], structural

    cfg = ControlFlowGraph.from_program(program)

    # entry is always reachable and leads the rpo
    assert 0 in cfg.reachable
    assert cfg.rpo[0] == 0
    # rpo enumerates exactly the reachable blocks, once each
    assert sorted(cfg.rpo) == sorted(cfg.reachable)
    assert len(set(cfg.rpo)) == len(cfg.rpo)

    # pred/succ duality over real blocks and the virtual exit
    for a in [b.index for b in program.blocks]:
        for s in cfg.succ[a]:
            assert a in cfg.pred[s]
    for b in [b.index for b in program.blocks] + [EXIT_BLOCK]:
        for p in cfg.pred[b]:
            assert b in cfg.succ[p]

    # every branch target is a block leader
    for inst in program.instructions:
        if inst.is_branch:
            assert any(b.start_pc == inst.target_pc for b in program.blocks)

    # pc reachability agrees with block reachability
    for block in program.blocks:
        for inst in block:
            assert cfg.is_reachable_pc(inst.pc) == (
                block.index in cfg.reachable
            )
