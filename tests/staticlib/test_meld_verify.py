"""The differential meld-verification harness: it passes on sound melds
and actually catches unsound ones."""

from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro.staticlib import verify_all, verify_workload
from repro.staticlib.verify import _diff_registers, _lint_regressions
from repro.workloads import DIVERGENT_ABBRS, build_workload


class TestVerifyPasses:
    def test_divergent_suite_melds_and_verifies(self):
        report = verify_all(scale="tiny", abbrs=DIVERGENT_ABBRS)
        assert report.ok
        assert len(report.melded) == len(DIVERGENT_ABBRS)
        for check in report.checks:
            assert check.melds_applied == 1
            assert check.melds_rejected == 0
            assert check.instructions_after < check.instructions_before
            assert check.dynamic_after < check.dynamic_before
            assert "meld(s)" in check.summary()

    def test_table1_kernel_is_a_noop(self):
        check = verify_workload(build_workload("BIN", "tiny"))
        assert check.ok and not check.changed
        assert check.instructions_after == check.instructions_before
        assert "no meldable regions" in check.summary()

    def test_progress_callback_and_dict_shape(self):
        seen = []
        report = verify_all(scale="tiny", abbrs=("DIVEO",),
                            progress=seen.append)
        assert [c.abbr for c in seen] == ["DIVEO"]
        payload = report.to_dict()
        assert payload["ok"] is True
        (wl,) = payload["workloads"]
        assert wl["abbr"] == "DIVEO" and wl["problems"] == []


class TestVerifyCatchesTampering:
    @pytest.mark.filterwarnings("ignore:.*never-written.*")
    def test_flipped_guard_polarity_caught(self):
        """A transform that melds correctly but inverts one guard (so the
        wrong lanes execute the op) must produce problems, not silently
        pass."""
        from repro.isa.program import Program
        from repro.staticlib.passes import darm_ideal_pass

        workload = build_workload("DIVEO", "tiny")

        def tampered(program):
            melded = darm_ideal_pass(program)
            insts = list(melded.instructions)
            for idx, inst in enumerate(insts):
                if inst.guard is not None and inst.srcs:
                    # flip the guard polarity of one surviving arm op:
                    # the wrong lanes execute it
                    insts[idx] = dc_replace(
                        inst, guard_negated=not inst.guard_negated, text=""
                    )
                    break
            return Program(name=melded.name, instructions=insts,
                           labels=dict(melded.labels), params=melded.params,
                           shared_words=melded.shared_words)

        check = verify_workload(workload, transform=tampered)
        assert not check.ok
        assert any("memory differs" in p or "oracle" in p
                   for p in check.problems)

    def test_identity_transform_is_clean(self):
        check = verify_workload(build_workload("DIVEO", "tiny"),
                                transform=lambda p: p)
        assert check.ok and not check.changed


class TestDiffRegisters:
    KEY = (0, 0, "r", "acc")

    def test_missing_register_means_zeros(self):
        zeros = np.zeros(4, dtype=np.uint32)
        assert _diff_registers({self.KEY: zeros}, {}) == []
        assert _diff_registers({}, {self.KEY: zeros}) == []

    def test_mismatch_reported_with_location(self):
        a = {self.KEY: np.array([1, 2, 3, 4], dtype=np.uint32)}
        b = {self.KEY: np.array([1, 2, 3, 5], dtype=np.uint32)}
        problems = _diff_registers(a, b)
        assert len(problems) == 1
        assert "tb0/warp0" in problems[0] and "acc" in problems[0]

    def test_missing_nonzero_register_is_a_mismatch(self):
        a = {self.KEY: np.array([7, 0, 0, 0], dtype=np.uint32)}
        assert len(_diff_registers(a, {})) == 1


class TestLintRegressions:
    @pytest.mark.filterwarnings("ignore:.*never-written.*")
    def test_introduced_uninit_read_is_flagged(self):
        from repro import assemble

        clean = assemble(
            """
.param x
    ld.global.f32  $v, [%param.x]
    st.global.f32  [%param.x], $v
    exit
""",
            name="k",
        )
        dirty = assemble(
            """
.param x
    ld.global.f32  $v, [%param.x]
    add.f32        $v, $v, $ghost
    st.global.f32  [%param.x], $v
    exit
""",
            name="k",
        )
        problems = _lint_regressions(clean, dirty)
        assert any("uninitialized" in p for p in problems)
        assert _lint_regressions(clean, clean) == []
