"""The DARM melding transform: regions, alignment, legality, emission,
and the verifying pass pipeline."""

import numpy as np
import pytest

from repro import assemble
from repro.isa.instructions import INSTRUCTION_BYTES
from repro.staticlib import (
    DEFAULT_THRESHOLD,
    PassManager,
    align_arms,
    apply_meld,
    check_legality,
    find_diamonds,
    meld_program,
    meldable_plans,
    plan_meld,
)
from repro.staticlib.meld import MeldRecord
from repro.staticlib.passes import _lint_fingerprint

DIAMOND_SRC = """
.param x
.param out
    mul.u32        $o, %tid.x, 4
    add.u32        $o, $o, %param.x
    ld.global.f32  $v, [$o]
    setp.lt.f32    $p0, $v, 0.0
@$p0 bra neg
    mul.f32        $v, $v, 2.0
    add.f32        $y, $v, 1.0
    bra join
neg:
    mul.f32        $v, $v, 4.0
    add.f32        $y, $v, 1.0
join:
    mul.u32        $o, %tid.x, 4
    add.u32        $o, $o, %param.out
    st.global.f32  [$o], $y
    exit
"""

TRIANGLE_SRC = """
.param x
    mul.u32        $o, %tid.x, 4
    add.u32        $o, $o, %param.x
    ld.global.f32  $v, [$o]
    setp.ge.f32    $p0, $v, 0.0
@$p0 bra join
    neg.f32        $v, $v
join:
    st.global.f32  [$o], $v
    exit
"""

LOOP_SRC = """
.param n
    mov.u32        $i, 0
loop:
    add.u32        $i, $i, 1
    setp.lt.u32    $p0, $i, %param.n
@$p0 bra loop
    exit
"""


class TestFindDiamonds:
    def test_diamond_found(self):
        program = assemble(DIAMOND_SRC, name="k")
        diamonds = find_diamonds(program)
        assert len(diamonds) == 1
        d = diamonds[0]
        assert d.taken_arm is not None and d.fall_arm is not None
        assert program.at(d.branch_pc).guard is not None
        assert d.join_pc == program.labels["join"]

    def test_triangle_found_with_empty_taken_arm(self):
        program = assemble(TRIANGLE_SRC, name="k")
        diamonds = find_diamonds(program)
        assert len(diamonds) == 1
        assert diamonds[0].taken_arm is None
        assert diamonds[0].fall_arm is not None

    def test_loop_backedge_is_not_a_diamond(self):
        assert find_diamonds(assemble(LOOP_SRC, name="k")) == []

    def test_table1_kernels_have_no_diamonds(self):
        from repro.workloads import build_workload

        for abbr in ("BIN", "PT", "MM"):
            assert find_diamonds(build_workload(abbr, "tiny").program) == []


class TestLegality:
    def _illegal(self, arm_body: str) -> str:
        src = f"""
.param x
    ld.global.f32  $v, [%param.x]
    setp.lt.f32    $p0, $v, 0.0
@$p0 bra arm
    add.f32        $v, $v, 1.0
    bra join
arm:
{arm_body}
join:
    st.global.f32  [%param.x], $v
    exit
"""
        program = assemble(src, name="k")
        diamonds = find_diamonds(program)
        assert len(diamonds) == 1
        reason = check_legality(program, diamonds[0])
        assert reason is not None
        return reason

    def test_barrier_arm_rejected(self):
        assert "bar.sync" in self._illegal("    bar.sync\n    sub.f32 $v, $v, 1.0")

    def test_predicated_arm_rejected(self):
        assert "already predicated" in self._illegal("@$p0 sub.f32 $v, $v, 1.0")

    def test_guard_redefinition_rejected(self):
        assert "redefines branch predicate" in self._illegal(
            "    setp.gt.f32 $p0, $v, 2.0\n    sub.f32 $v, $v, 1.0"
        )

    def test_legal_diamond_passes(self):
        program = assemble(DIAMOND_SRC, name="k")
        assert check_legality(program, find_diamonds(program)[0]) is None


class TestAlignment:
    def test_identical_arms_fully_match(self):
        program = assemble(DIAMOND_SRC, name="k")
        plan = plan_meld(program, find_diamonds(program)[0])
        # arms: (mul, add) vs (mul, add); muls differ in immediate, adds match
        assert plan.taken_len == 2 and plan.fall_len == 2
        assert plan.matched == 1
        assert plan.similarity == pytest.approx(0.5)
        assert plan.profitable(DEFAULT_THRESHOLD)

    def test_align_is_ordered_lcs(self):
        program = assemble(DIAMOND_SRC, name="k")
        d = find_diamonds(program)[0]
        from repro.staticlib import arm_instructions

        taken = arm_instructions(program, d.taken_arm, d.join_pc)
        fall = arm_instructions(program, d.fall_arm, d.join_pc)
        pairs = align_arms(taken, fall)
        assert pairs == sorted(pairs)
        for i, j in pairs:
            assert str(taken[i].dst) == str(fall[j].dst)
            assert taken[i].opcode == fall[j].opcode


class TestApplyMeld:
    def test_melded_program_is_straight_line(self):
        program = assemble(DIAMOND_SRC, name="k")
        melded = apply_meld(program, find_diamonds(program)[0])
        assert not any(i.is_branch for i in melded.instructions)
        # branch + two `bra join` slots removed, one matched pair deduped
        assert len(melded.instructions) == len(program.instructions) - 3
        # contiguous renumbering
        for idx, inst in enumerate(melded.instructions):
            assert inst.pc == idx * INSTRUCTION_BYTES
            assert inst.index == idx

    def test_guards_are_complementary(self):
        program = assemble(DIAMOND_SRC, name="k")
        melded = apply_meld(program, find_diamonds(program)[0])
        guarded = [i for i in melded.instructions if i.guard is not None]
        assert len(guarded) == 2  # one unique mul per arm
        assert {g.guard_negated for g in guarded} == {False, True}
        assert {g.guard.name for g in guarded} == {"p0"}

    def test_listing_shows_new_guards(self):
        program = assemble(DIAMOND_SRC, name="k")
        melded = apply_meld(program, find_diamonds(program)[0])
        listing = melded.listing()
        assert "@$p0" in listing and "@!$p0" in listing
        assert "bra" not in listing

    def test_surviving_branch_targets_remapped(self):
        # A loop AROUND the diamond: its backward branch must follow the
        # loop header through the renumbering.
        src = """
.param x
.param n
    mov.u32        $i, 0
head:
    ld.global.f32  $v, [%param.x]
    setp.lt.f32    $p0, $v, 0.0
@$p0 bra neg
    add.f32        $v, $v, 1.0
    bra join
neg:
    sub.f32        $v, $v, 1.0
join:
    st.global.f32  [%param.x], $v
    add.u32        $i, $i, 1
    setp.lt.u32    $p1, $i, %param.n
@$p1 bra head
    exit
"""
        program = assemble(src, name="k")
        diamonds = find_diamonds(program)
        assert len(diamonds) == 1
        melded = apply_meld(program, diamonds[0])
        back = [i for i in melded.instructions if i.is_branch]
        assert len(back) == 1
        assert back[0].target_pc == melded.labels["head"]
        # the loop header label moved up by the removed slots
        assert melded.labels["head"] == program.labels["head"]


class TestPassManager:
    def test_melds_profitable_diamond(self):
        program = assemble(DIAMOND_SRC, name="k")
        result = meld_program(program)
        assert result.changed
        assert len(result.applied) == 1
        assert result.applied[0].similarity == pytest.approx(0.5)
        assert not result.rejected

    def test_threshold_gates_darm_but_not_ideal(self):
        # Arms with nothing in common: similarity 0.
        src = """
.param x
    ld.global.f32  $v, [%param.x]
    setp.lt.f32    $p0, $v, 0.0
@$p0 bra neg
    add.f32        $v, $v, 1.0
    bra join
neg:
    sub.f32        $v, $v, 2.0
join:
    st.global.f32  [%param.x], $v
    exit
"""
        program = assemble(src, name="k")
        assert meldable_plans(program, threshold=DEFAULT_THRESHOLD) == []
        assert not meld_program(program).changed
        ideal = meld_program(program, threshold=None)
        assert ideal.changed and len(ideal.applied) == 1

    @pytest.mark.filterwarnings("ignore:.*never-written.*")
    def test_unsound_step_is_rejected_and_blocklisted(self):
        """A pass whose output lints worse than its input is refused and
        the pipeline terminates instead of retrying forever."""
        program = assemble(DIAMOND_SRC, name="k")
        # A "transform" that guards the load defining $v: $v becomes a
        # may-def, so every later read of it flags as uninitialized — the
        # manager's monotone fingerprint check must refuse that.
        from dataclasses import replace as dc_replace

        from repro.isa.program import Program

        branch = next(i for i in program.instructions if i.is_branch)

        class EvilPass:
            name = "evil"

            def __init__(self):
                self.steps = 0
                self.blocked = []

            def step(self, prog):
                if self.steps:
                    return None
                self.steps += 1
                insts = [
                    dc_replace(i, guard=branch.guard, text="")
                    if i.opcode.value == "ld" else i
                    for i in prog.instructions
                ]
                bad = Program(name=prog.name, instructions=insts,
                              labels=dict(prog.labels), params=prog.params,
                              shared_words=prog.shared_words)
                record = MeldRecord(branch_pc=0, join_pc=0, matched=0,
                                    taken_len=0, fall_len=0,
                                    similarity=0.0, saved_slots=0)
                return bad, record

            def block(self, prog, record):
                self.blocked.append(record.branch_pc)

        evil = EvilPass()
        result = PassManager([evil]).run(program)
        assert not result.changed
        assert result.program is program
        assert len(result.rejected) == 1
        assert "grew" in result.rejected[0].reason
        assert evil.blocked == [0]

    @pytest.mark.filterwarnings("ignore:.*never-written.*")
    def test_monotone_not_absolute(self):
        """A kernel that already lints dirty can still be melded, as long
        as nothing gets worse."""
        # $u is read but never written: one uninitialized-read finding
        # before AND after the meld.
        src = """
.param x
    ld.global.f32  $v, [%param.x]
    add.f32        $v, $v, $u
    setp.lt.f32    $p0, $v, 0.0
@$p0 bra neg
    add.f32        $v, $v, 1.0
    bra join
neg:
    add.f32        $v, $v, 2.0
join:
    st.global.f32  [%param.x], $v
    exit
"""
        program = assemble(src, name="k")
        _, uninit_before = _lint_fingerprint(program)
        assert uninit_before == 1
        result = meld_program(program, threshold=None)
        assert result.changed
        _, uninit_after = _lint_fingerprint(result.program)
        assert uninit_after == 1


class TestComplementaryGuardCoverage:
    """The reaching-definitions refinement the melded idiom depends on:
    writes under @$p and @!$p jointly cover every lane."""

    def test_complementary_writes_cover_later_read(self):
        from repro.staticlib import find_uninitialized_reads

        src = """
.param x
    ld.global.f32  $v, [%param.x]
    setp.lt.f32    $p0, $v, 0.0
@$p0 mov.f32       $m, 1.0
@!$p0 mov.f32      $m, 2.0
    st.global.f32  [%param.x], $m
    exit
"""
        assert find_uninitialized_reads(assemble(src, name="k")) == ()

    def test_single_polarity_write_does_not_cover(self):
        from repro.staticlib import find_uninitialized_reads

        src = """
.param x
    ld.global.f32  $v, [%param.x]
    setp.lt.f32    $p0, $v, 0.0
@$p0 mov.f32       $m, 1.0
    st.global.f32  [%param.x], $m
    exit
"""
        reads = find_uninitialized_reads(assemble(src, name="k"))
        assert [r.display_name for r in reads] == ["$m"]

    def test_predicate_redefinition_invalidates_coverage(self):
        from repro.staticlib import find_uninitialized_reads

        src = """
.param x
    ld.global.f32  $v, [%param.x]
    setp.lt.f32    $p0, $v, 0.0
@$p0 mov.f32       $m, 1.0
    setp.gt.f32    $p0, $v, 2.0
@!$p0 mov.f32      $m, 2.0
    st.global.f32  [%param.x], $m
    exit
"""
        reads = find_uninitialized_reads(assemble(src, name="k"))
        assert [r.display_name for r in reads] == ["$m"]


class TestMeldedExecution:
    def test_melded_diamond_bit_identical(self):
        from repro import Dim3, GlobalMemory, LaunchConfig, run_functional

        program = assemble(DIAMOND_SRC, name="k")
        melded = apply_meld(program, find_diamonds(program)[0])
        rng = np.random.default_rng(5)
        x = rng.standard_normal(32)

        def run(prog):
            mem = GlobalMemory(4096)
            px = mem.alloc_array(x)
            pout = mem.alloc(32)
            launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(32))
            run_functional(prog, launch, mem, params={"x": px, "out": pout})
            return mem.words.copy()

        assert np.array_equal(run(program), run(melded))
