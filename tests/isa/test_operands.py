"""Unit tests for the operand model."""

import pytest

from repro.isa.operands import (
    CONDITIONALLY_REDUNDANT_SPECIALS,
    Immediate,
    MemRef,
    MemSpace,
    Param,
    Register,
    Special,
    TB_UNIFORM_SPECIALS,
)


class TestRegister:
    def test_identity(self):
        assert Register("r0") == Register("r0")
        assert Register("r0") != Register("r1")

    def test_str(self):
        assert str(Register("ofs3")) == "$ofs3"

    def test_hashable(self):
        assert len({Register("a"), Register("a"), Register("b")}) == 2


class TestImmediate:
    def test_int_float_distinction(self):
        assert not Immediate(3).is_float
        assert Immediate(3.0).is_float

    def test_equality(self):
        assert Immediate(4) == Immediate(4)


class TestSpecial:
    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            Special("tid.w")

    def test_tb_uniform_classification(self):
        assert Special("ctaid.x").is_tb_uniform
        assert Special("ntid.y").is_tb_uniform
        assert Special("smem_base").is_tb_uniform
        assert not Special("tid.x").is_tb_uniform
        assert not Special("tid.y").is_tb_uniform
        assert not Special("laneid").is_tb_uniform

    def test_conditional_redundancy_is_tidx_only(self):
        """Section 4.2: the analysis is limited to threadIdx.x."""
        assert Special("tid.x").is_conditionally_redundant
        assert not Special("tid.y").is_conditionally_redundant
        assert CONDITIONALLY_REDUNDANT_SPECIALS == frozenset({"tid.x"})

    def test_uniform_set_contents(self):
        # Block indices, block dims, grid dims, shared base — the
        # paper's definitely redundant intrinsics.
        for name in ("ctaid.x", "ctaid.y", "ctaid.z", "ntid.x", "nctaid.x", "smem_base"):
            assert name in TB_UNIFORM_SPECIALS


class TestMemRef:
    def test_registers_collects_base_and_index(self):
        m = MemRef(space=MemSpace.GLOBAL, base=Register("a"), index=Register("b"), offset=4)
        assert m.registers() == (Register("a"), Register("b"))

    def test_non_register_base(self):
        m = MemRef(space=MemSpace.SHARED, base=Immediate(0), offset=16)
        assert m.registers() == ()

    def test_str_contains_components(self):
        m = MemRef(space=MemSpace.GLOBAL, base=Register("a"), offset=16)
        assert "$a" in str(m) and "0x10" in str(m)


class TestParam:
    def test_str(self):
        assert str(Param("width")) == "%param.width"
