"""Unit tests for Program: basic blocks, CFG, reconvergence points."""

import pytest

from repro.isa import assemble

DIAMOND = """
    mov.u32 $a, 0
    setp.eq.u32 $p0, %tid.x, 0
@$p0 bra then
    add.u32 $a, $a, 1
    bra join
then:
    add.u32 $a, $a, 2
join:
    add.u32 $a, $a, 3
    exit
"""

LOOP = """
    mov.u32 $i, 0
top:
    add.u32 $i, $i, 1
    setp.lt.u32 $p0, $i, 4
@$p0 bra top
    exit
"""


class TestBasicBlocks:
    def test_diamond_block_count(self):
        prog = assemble(DIAMOND)
        # entry, else-path, then-path, join
        assert len(prog.blocks) == 4

    def test_blocks_partition_instructions(self):
        prog = assemble(DIAMOND)
        total = sum(len(b) for b in prog.blocks)
        assert total == len(prog)

    def test_block_of(self):
        prog = assemble(LOOP)
        body = prog.block_of(8)
        assert body.start_pc == 8
        assert prog.block_of(16) is body

    def test_at_unknown_pc(self):
        prog = assemble(LOOP)
        with pytest.raises(KeyError):
            prog.at(0x1234)


class TestReconvergence:
    def test_diamond_reconverges_at_join(self):
        prog = assemble(DIAMOND)
        rpc = prog.reconvergence_pc(16)  # the @$p0 bra
        assert rpc == prog.labels["join"]

    def test_loop_backedge_reconverges_at_exit_block(self):
        prog = assemble(LOOP)
        rpc = prog.reconvergence_pc(24)
        # The loop branch's post-dominator is the exit block.
        assert rpc == 32

    def test_branch_to_exit_only(self):
        prog = assemble("""
            setp.eq.u32 $p0, %tid.x, 0
        @$p0 bra out
            mov.u32 $a, 1
        out:
            exit
        """)
        assert prog.reconvergence_pc(8) == prog.labels["out"]


class TestListing:
    def test_listing_roundtrips_labels(self):
        prog = assemble(LOOP)
        text = prog.listing()
        assert "top:" in text
        assert "bra" in text

    def test_listing_annotation_column(self):
        prog = assemble(LOOP)
        text = prog.listing(annotate=lambda i: "XX")
        assert "XX" in text
