"""Unit tests for the assembler."""

import pytest

from repro.isa import AssemblyError, Opcode, assemble
from repro.isa.instructions import CmpOp, DType, INSTRUCTION_BYTES
from repro.isa.operands import Immediate, MemSpace, Param, Predicate, Register, Special


def one(src):
    """Assemble a single-statement kernel; return its instruction."""
    return assemble(src + "\nexit").instructions[0]


class TestBasicParsing:
    def test_alu(self):
        inst = one("add.u32 $r1, $r2, 5")
        assert inst.opcode is Opcode.ADD
        assert inst.dst == Register("r1")
        assert inst.srcs == (Register("r2"), Immediate(5))
        assert inst.dtype is DType.U32

    def test_float_literal(self):
        inst = one("mul.f32 $a, $b, 1.5")
        assert inst.srcs[1] == Immediate(1.5)
        assert inst.dtype is DType.F32

    def test_hex_immediate(self):
        inst = one("and.u32 $a, $b, 0x7f")
        assert inst.srcs[1] == Immediate(0x7F)

    def test_negative_immediate(self):
        inst = one("add.s32 $a, $b, -3")
        assert inst.srcs[1] == Immediate(-3)

    def test_special_and_param(self):
        inst = one("mul.u32 $a, %tid.x, %param.n")
        assert inst.srcs == (Special("tid.x"), Param("n"))

    def test_mad_three_sources(self):
        inst = one("mad.f32 $d, $a, $b, $c")
        assert len(inst.srcs) == 3

    def test_pcs_are_multiples_of_eight(self):
        prog = assemble("mov.u32 $a, 1\nmov.u32 $b, 2\nexit")
        assert [i.pc for i in prog.instructions] == [0, 8, 16]
        assert INSTRUCTION_BYTES == 8


class TestPredicates:
    def test_setp(self):
        inst = one("setp.lt.u32 $p0, $a, $b")
        assert inst.opcode is Opcode.SETP
        assert inst.cmp is CmpOp.LT
        assert inst.dst == Predicate("p0")

    def test_setp_requires_cmp(self):
        with pytest.raises(AssemblyError):
            one("setp.u32 $p0, $a, $b")

    def test_guard(self):
        inst = one("@$p1 add.u32 $a, $a, 1")
        assert inst.guard == Predicate("p1")
        assert not inst.guard_negated

    def test_negated_guard(self):
        inst = one("@!$p0 mov.u32 $a, 0")
        assert inst.guard_negated

    def test_p_names_are_predicates(self):
        inst = one("selp.u32 $a, $b, $c, $p3")
        assert inst.srcs[2] == Predicate("p3")

    def test_p_with_suffix_is_register(self):
        """Only $p<digits> is a predicate; $pos etc. are registers."""
        inst = one("mov.u32 $pos, 1")
        assert inst.dst == Register("pos")


class TestMemory:
    def test_load(self):
        inst = one("ld.global.f32 $v, [$addr + 16]")
        assert inst.is_load
        assert inst.mem.space is MemSpace.GLOBAL
        assert inst.mem.offset == 16
        assert inst.dst == Register("v")

    def test_store_sources(self):
        inst = one("st.shared.s32 [$a], $v")
        assert inst.is_store
        assert inst.srcs == (Register("v"),)
        assert inst.dst is None

    def test_indexed_address(self):
        inst = one("ld.shared.f32 $v, [$base + $idx + 8]")
        assert inst.mem.index == Register("idx")
        assert inst.mem.offset == 8

    def test_requires_space(self):
        with pytest.raises(AssemblyError):
            one("ld.f32 $v, [$a]")

    def test_atomic(self):
        inst = one("atom.global.add.u32 $old, [$a], $v")
        assert inst.is_atomic
        assert inst.dst == Register("old")

    def test_source_registers_include_address(self):
        inst = one("st.global.f32 [$a + $b], $v")
        names = {r.name for r in inst.source_registers()}
        assert names == {"a", "b", "v"}


class TestControlFlow:
    def test_branch_target_resolution(self):
        prog = assemble("""
            mov.u32 $i, 0
        top:
            add.u32 $i, $i, 1
            setp.lt.u32 $p0, $i, 4
        @$p0 bra top
            exit
        """)
        bra = prog.instructions[3]
        assert bra.is_branch
        assert bra.target == "top"
        assert bra.target_pc == 8

    def test_undefined_label(self):
        with pytest.raises(AssemblyError, match="undefined label"):
            assemble("bra nowhere\nexit")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError, match="duplicate label"):
            assemble("a:\nnop\na:\nnop\nexit")

    def test_implicit_exit_appended(self):
        prog = assemble("mov.u32 $a, 1")
        assert prog.instructions[-1].is_exit

    def test_bar_sync(self):
        inst = one("bar.sync")
        assert inst.is_barrier


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError, match="unknown opcode"):
            one("frobnicate $a, $b")

    def test_unknown_modifier(self):
        with pytest.raises(AssemblyError, match="unknown modifier"):
            one("add.q64 $a, $b, $c")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError, match="expects 2 source"):
            one("add.u32 $a, $b")

    def test_empty_kernel(self):
        with pytest.raises(AssemblyError, match="empty kernel"):
            assemble("# nothing here")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("mov.u32 $a, 1\nmov.u32 $b, 2\nbogus $c\nexit")


class TestDirectives:
    def test_params_and_shared(self):
        prog = assemble(".kernel k\n.param alpha\n.param beta\n.shared 128\nexit")
        assert prog.name == "k"
        assert prog.params == ("alpha", "beta")
        assert prog.shared_words == 128

    def test_comments_stripped(self):
        prog = assemble("mov.u32 $a, 1  # trailing\n// full line\nexit")
        assert len(prog) == 2
