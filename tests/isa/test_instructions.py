"""Unit tests for the Instruction model and its helpers."""

from repro.isa import assemble
from repro.isa.instructions import (
    ALU_OPS,
    INSTRUCTION_BYTES,
    LOAD_OPS,
    MEMORY_OPS,
    Opcode,
    SFU_OPS,
    STORE_OPS,
    source_arity,
)


def one(src):
    return assemble(src + "\nexit").instructions[0]


class TestClassification:
    def test_groups_are_disjoint_where_expected(self):
        assert not (ALU_OPS & SFU_OPS)
        assert not (ALU_OPS & MEMORY_OPS)
        assert LOAD_OPS <= MEMORY_OPS and STORE_OPS <= MEMORY_OPS

    def test_predicates_on_instruction(self):
        ld = one("ld.global.f32 $v, [$a]")
        assert ld.is_load and ld.is_memory and not ld.is_store
        st = one("st.shared.f32 [$a], $v")
        assert st.is_store and st.is_memory
        bra = assemble("x:\nbra x\nexit").instructions[0]
        assert bra.is_branch
        assert one("bar.sync").is_barrier
        assert one("atom.global.add.u32 $o, [$a], 1").is_atomic
        assert one("sqrt.f32 $a, $b").uses_sfu
        assert not one("add.u32 $a, $b, $c").uses_sfu

    def test_source_arity_table_is_total(self):
        for op in Opcode:
            assert source_arity(op) >= 0


class TestAccessors:
    def test_dest_register_vs_predicate(self):
        add = one("add.u32 $a, $b, $c")
        assert add.dest_register().name == "a"
        assert add.dest_predicate() is None
        setp = one("setp.eq.u32 $p0, $a, $b")
        assert setp.dest_register() is None
        assert setp.dest_predicate().name == "p0"

    def test_source_predicates_include_guard(self):
        inst = one("@$p2 selp.u32 $a, $b, $c, $p1")
        names = {p.name for p in inst.source_predicates()}
        assert names == {"p1", "p2"}

    def test_str_roundtrips_through_assembler(self):
        """str(inst) must re-assemble to the same semantics."""
        cases = [
            "add.u32 $a, $b, 5",
            "mad.f32 $d, $a, $b, $c",
            "ld.global.s32 $v, [$a + 16]",
            "st.shared.f32 [$a], $v",
            "setp.lt.u32 $p0, $a, %param.n",
            "@$p0 mov.u32 $a, 0",
            "bar.sync",
        ]
        src = ".param n\n" + "\n".join(cases) + "\nexit"
        prog = assemble(src)
        rebuilt = "\n".join(str(i) for i in prog.instructions)
        prog2 = assemble(".param n\n" + rebuilt)
        for a, b in zip(prog.instructions, prog2.instructions):
            assert a.opcode == b.opcode and a.srcs == b.srcs and a.dst == b.dst

    def test_pc_spacing(self):
        prog = assemble("nop\nnop\nnop\nexit")
        pcs = [i.pc for i in prog.instructions]
        assert pcs == [k * INSTRUCTION_BYTES for k in range(4)]
