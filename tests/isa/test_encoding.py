"""Unit tests for the 64-bit encoding with redundancy hint bits."""

import pytest

from repro.isa import assemble
from repro.isa.encoding import (
    EncodingError,
    HINT_CONDITIONAL,
    HINT_REDUNDANT,
    HINT_VECTOR,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Opcode

SRC = """
.kernel enc
.param base
    mul.u32        $r1, %tid.x, 4
    add.u32        $r2, $r1, %param.base
    ld.global.s32  $r3, [$r2 + 8]
    setp.lt.u32    $p0, $r3, 100
@$p0 bra skip
    st.global.s32  [$r2], $r3
skip:
    bar.sync
    exit
"""


class TestRoundTrip:
    def test_words_are_64_bit(self):
        prog = assemble(SRC)
        enc = encode_program(prog)
        assert all(0 <= w < (1 << 64) for w in enc.words)
        assert len(enc.words) == len(prog)

    def test_decode_matches_semantics(self):
        prog = assemble(SRC)
        enc = encode_program(prog)
        back = decode_program(enc)
        assert len(back) == len(prog)
        for a, b in zip(prog.instructions, back.instructions):
            assert a.opcode == b.opcode
            assert a.dtype == b.dtype
            assert a.cmp == b.cmp
            assert a.dst == b.dst
            assert a.srcs == b.srcs
            assert a.mem == b.mem
            assert a.target_pc == b.target_pc
            assert a.guard == b.guard
            assert a.guard_negated == b.guard_negated

    def test_decoded_program_has_working_cfg(self):
        prog = assemble(SRC)
        back = decode_program(encode_program(prog))
        assert back.branch_pcs() == prog.branch_pcs()


class TestHints:
    def test_hint_bits_encode_three_states(self):
        prog = assemble(SRC)
        markings = {0: HINT_REDUNDANT, 8: HINT_CONDITIONAL, 16: HINT_VECTOR}
        enc = encode_program(prog, markings)
        assert enc.hint_of(0) == HINT_REDUNDANT
        assert enc.hint_of(8) == HINT_CONDITIONAL
        assert enc.hint_of(16) == HINT_VECTOR
        # Unmarked PCs default to vector.
        assert enc.hint_of(24) == HINT_VECTOR

    def test_hints_do_not_change_decoding(self):
        """Section 4.2: markings only add hints; the instruction stream
        is unchanged, so non-DARSIE hardware can ignore them."""
        prog = assemble(SRC)
        plain = decode_program(encode_program(prog))
        hinted = decode_program(
            encode_program(prog, {i.pc: HINT_REDUNDANT for i in prog.instructions})
        )
        for a, b in zip(plain.instructions, hinted.instructions):
            assert a.opcode == b.opcode and a.srcs == b.srcs and a.dst == b.dst

    def test_invalid_hint_rejected(self):
        prog = assemble(SRC)
        from repro.isa.encoding import _Pool

        with pytest.raises(EncodingError):
            encode_instruction(prog.instructions[0], _Pool(), hint=7)


class TestBranchEncoding:
    def test_branch_target_word_index(self):
        prog = assemble(SRC)
        enc = encode_program(prog)
        back = decode_program(enc)
        bra = [i for i in back.instructions if i.opcode is Opcode.BRA][0]
        assert bra.target_pc == prog.labels["skip"]
