"""Unit tests for the per-warp register file."""

import numpy as np

from repro.simt.register_file import WarpRegisterFile


class TestVectorRegisters:
    def test_unwritten_reads_zero(self):
        rf = WarpRegisterFile(warp_size=8)
        assert rf.read("r0").tolist() == [0] * 8

    def test_full_write(self):
        rf = WarpRegisterFile(warp_size=4)
        rf.write("a", np.arange(4))
        assert rf.read("a").tolist() == [0, 1, 2, 3]

    def test_masked_write_merges(self):
        rf = WarpRegisterFile(warp_size=4)
        rf.write("a", np.array([1, 1, 1, 1]))
        rf.write("a", np.array([9, 9, 9, 9]), mask=np.array([True, False, True, False]))
        assert rf.read("a").tolist() == [9, 1, 9, 1]

    def test_masked_write_promotes_dtype(self):
        rf = WarpRegisterFile(warp_size=2)
        rf.write("a", np.array([1, 2]))
        rf.write("a", np.array([0.5, 0.5]), mask=np.array([True, False]))
        out = rf.read("a")
        assert out.dtype.kind == "f"
        assert out.tolist() == [0.5, 2.0]

    def test_scalar_broadcast(self):
        rf = WarpRegisterFile(warp_size=4)
        rf.write("a", np.int64(7))
        assert rf.read("a").tolist() == [7] * 4

    def test_write_copies_input(self):
        rf = WarpRegisterFile(warp_size=2)
        src = np.array([1, 2])
        rf.write("a", src)
        src[0] = 99
        assert rf.read("a")[0] == 1


class TestPredicates:
    def test_default_false(self):
        rf = WarpRegisterFile(warp_size=4)
        assert not rf.read_pred("p0").any()

    def test_masked_pred_write(self):
        rf = WarpRegisterFile(warp_size=4)
        rf.write_pred("p0", np.array([True] * 4))
        rf.write_pred("p0", np.array([False] * 4), mask=np.array([True, True, False, False]))
        assert rf.read_pred("p0").tolist() == [False, False, True, True]

    def test_predicates_separate_from_registers(self):
        rf = WarpRegisterFile(warp_size=2)
        rf.write("p0x", np.array([5, 5]))
        assert not rf.read_pred("p0x").any() or True  # distinct namespaces
        assert rf.read("p0x").tolist() == [5, 5]


class TestSnapshot:
    def test_snapshot_is_deep(self):
        rf = WarpRegisterFile(warp_size=2)
        rf.write("a", np.array([1, 2]))
        snap = rf.snapshot()
        rf.write("a", np.array([8, 9]))
        assert snap["a"].tolist() == [1, 2]
