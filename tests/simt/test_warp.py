"""Unit tests for warp state and the SIMT reconvergence stack."""

import numpy as np

from repro.simt.warp import WarpState


def make_warp(n=4):
    return WarpState.create(warp_id=0, tb_index=0, hw_mask=np.ones(n, dtype=bool))


class TestBasics:
    def test_initial_state(self):
        w = make_warp()
        assert w.pc == 0
        assert w.active_count == 4
        assert not w.has_simd_divergence
        assert not w.exited

    def test_pc_setter(self):
        w = make_warp()
        w.pc = 0x40
        assert w.pc == 0x40

    def test_partial_hw_mask_counts_as_divergence(self):
        """Section 4.5: instructions with inactive lanes never skip."""
        mask = np.array([True, True, False, False])
        w = WarpState.create(warp_id=0, tb_index=0, hw_mask=mask)
        assert not w.has_simd_divergence  # active == hw, no divergence yet
        w.top.active_mask = np.array([True, False, False, False])
        assert w.has_simd_divergence


class TestDivergence:
    def test_diverge_pushes_both_paths(self):
        w = make_warp()
        taken = np.array([True, False, True, False])
        w.diverge(taken_mask=taken, not_taken_pc=8, taken_pc=0x20, reconv_pc=0x40)
        assert len(w.stack) == 3
        # Taken path on top, then not-taken, then the continuation.
        assert w.pc == 0x20
        assert w.active_mask.tolist() == [True, False, True, False]
        assert w.has_simd_divergence

    def test_reconvergence_restores_mask(self):
        w = make_warp()
        taken = np.array([True, False, True, False])
        w.diverge(taken, not_taken_pc=8, taken_pc=0x20, reconv_pc=0x40)
        # Taken path runs to the reconvergence point.
        w.pc = 0x40
        assert w.maybe_reconverge()
        # Now the not-taken path is active.
        assert w.pc == 8
        assert w.active_mask.tolist() == [False, True, False, True]
        w.pc = 0x40
        assert w.maybe_reconverge()
        assert w.active_mask.all()
        assert len(w.stack) == 1
        assert not w.has_simd_divergence

    def test_diverge_to_exit(self):
        w = make_warp()
        taken = np.array([True, True, False, False])
        w.diverge(taken, not_taken_pc=8, taken_pc=0x30, reconv_pc=None)
        # Not-taken runs first (pushed on top), both rejoin only at exit.
        assert w.pc == 8
        assert w.active_mask.tolist() == [False, False, True, True]

    def test_retire(self):
        w = make_warp()
        w.retire()
        assert w.exited and not w.at_barrier
