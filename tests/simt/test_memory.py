"""Unit tests for the memory spaces."""

import numpy as np
import pytest

from repro.simt.memory import GlobalMemory, KernelParams, MemoryError_, SharedMemory


class TestWordSpace:
    def test_load_store_roundtrip(self):
        mem = GlobalMemory(64)
        addr = np.array([0, 4, 8], dtype=np.int64)
        mem.store(addr, np.array([1.5, 2.5, 3.5]))
        assert mem.load(addr, as_float=True).tolist() == [1.5, 2.5, 3.5]

    def test_integer_loads_are_int64(self):
        mem = GlobalMemory(64)
        mem.store(np.array([0]), np.array([42.0]))
        out = mem.load(np.array([0]), as_float=False)
        assert out.dtype == np.int64 and out[0] == 42

    def test_out_of_range(self):
        mem = GlobalMemory(4)
        with pytest.raises(MemoryError_, match="out of range"):
            mem.load(np.array([1 << 20]), as_float=True)
        with pytest.raises(MemoryError_):
            mem.load(np.array([-4]), as_float=True)

    def test_misaligned(self):
        mem = GlobalMemory(16)
        with pytest.raises(MemoryError_, match="misaligned"):
            mem.load(np.array([2]), as_float=True)

    def test_scatter_last_lane_wins(self):
        mem = GlobalMemory(16)
        mem.store(np.array([0, 0]), np.array([1.0, 2.0]))
        assert mem.load(np.array([0]), as_float=True)[0] == 2.0


class TestAllocator:
    def test_alloc_returns_byte_addresses(self):
        mem = GlobalMemory(1024)
        a = mem.alloc(8)
        b = mem.alloc(8)
        assert a % 4 == 0 and b % 4 == 0
        assert b > a

    def test_alloc_line_aligned(self):
        mem = GlobalMemory(1024)
        mem.alloc(3)
        b = mem.alloc(4)
        assert b % 128 == 0  # 32-word (128-byte) alignment

    def test_alloc_array_initialises(self):
        mem = GlobalMemory(1024)
        base = mem.alloc_array(np.arange(5))
        assert mem.read_array(base, 5, dtype=np.int64).tolist() == [0, 1, 2, 3, 4]

    def test_named_allocation(self):
        mem = GlobalMemory(1024)
        base = mem.alloc(4, name="x")
        assert mem.base_of("x") == base

    def test_exhaustion(self):
        mem = GlobalMemory(32)
        with pytest.raises(MemoryError_, match="exhausted"):
            mem.alloc(64)

    def test_host_write_bounds(self):
        mem = GlobalMemory(8)
        with pytest.raises(MemoryError_):
            mem.write_array(0, np.zeros(16))


class TestKernelParams:
    def test_lookup(self):
        p = KernelParams({"n": 4, "alpha": 0.5})
        assert p["n"] == 4
        assert "alpha" in p

    def test_missing(self):
        p = KernelParams({})
        with pytest.raises(KeyError, match="not provided"):
            p["nope"]

    def test_validate_against(self):
        p = KernelParams({"a": 1})
        p.validate_against(("a",))
        with pytest.raises(KeyError, match="missing kernel parameter"):
            p.validate_against(("a", "b"))


class TestSharedMemory:
    def test_default_size_is_96kb(self):
        assert SharedMemory().size_bytes == 96 * 1024
