"""Unit tests for the tracer and value summaries."""

import numpy as np

from repro import Dim3, GlobalMemory, LaunchConfig, Tracer, assemble, run_functional
from repro.simt.tracer import AFFINE, NONE, UNIFORM, UNSTRUCTURED, ValueSummary


class TestValueSummary:
    def test_uniform(self):
        s = ValueSummary.of(np.full(8, 42))
        assert s.kind == UNIFORM and s.base == 42.0

    def test_affine(self):
        s = ValueSummary.of(np.arange(10, 50, 5))
        assert s.kind == AFFINE and s.base == 10.0 and s.stride == 5.0

    def test_negative_stride_affine(self):
        s = ValueSummary.of(np.arange(16, 0, -2))
        assert s.kind == AFFINE and s.stride == -2.0

    def test_unstructured(self):
        s = ValueSummary.of(np.array([3, 1, 4, 1, 5]))
        assert s.kind == UNSTRUCTURED

    def test_repeating_pattern_is_unstructured(self):
        """Section 2: patterns not expressible as a single (base, stride)
        pair are unstructured — including the repeating tid.x vector of
        a 16x16 TB on a 32-wide warp."""
        s = ValueSummary.of(np.array(list(range(16)) * 2))
        assert s.kind == UNSTRUCTURED

    def test_equal_vectors_share_summary(self):
        a = ValueSummary.of(np.array([3, 1, 4, 1]))
        b = ValueSummary.of(np.array([3, 1, 4, 1]))
        c = ValueSummary.of(np.array([3, 1, 4, 2]))
        assert a == b and a != c

    def test_bool_vectors(self):
        s = ValueSummary.of(np.array([True, True, True]))
        assert s.kind == UNIFORM and s.base == 1.0

    def test_float_uniform(self):
        assert ValueSummary.of(np.full(4, 2.5)).kind == UNIFORM


class TestTracer:
    def _trace(self, src, block, warp=4, grid=1):
        prog = assemble(src)
        mem = GlobalMemory(1024)
        out = mem.alloc(64)
        tracer = Tracer()
        launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(*block), warp_size=warp)
        run_functional(prog, launch, mem, params={"out": out}, tracer=tracer)
        return tracer.trace

    SRC = """
.param out
    mov.u32 $a, %tid.x
    mov.u32 $i, 0
top:
    add.u32 $a, $a, 1
    add.u32 $i, $i, 1
    setp.lt.u32 $p0, $i, 3
@$p0 bra top
    shl.u32 $o, %tid.x, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $a
    exit
"""

    def test_occurrence_counting(self):
        trace = self._trace(self.SRC, (4, 2))
        adds = [r for r in trace.records if r.pc == 16]
        # 2 warps x 3 iterations.
        assert len(adds) == 6
        assert sorted(r.occurrence for r in adds if r.warp_id == 0) == [0, 1, 2]

    def test_store_has_no_summary(self):
        trace = self._trace(self.SRC, (4, 2))
        stores = [r for r in trace.records if r.opclass == "store"]
        assert stores and all(r.summary.kind == NONE for r in stores)

    def test_grouping_by_tb_and_grid(self):
        trace = self._trace(self.SRC, (4, 2), grid=2)
        tb_groups = dict(trace.grouped_by_tb())
        grid_groups = dict(trace.grouped_by_grid())
        assert len(tb_groups) == 2 * len(grid_groups) or len(tb_groups) > len(grid_groups)
        # Each TB group holds one record per warp.
        assert all(len(v) == 2 for v in tb_groups.values())

    def test_metadata(self):
        trace = self._trace(self.SRC, (4, 2), grid=3)
        assert trace.num_blocks == 3
        assert trace.warps_per_block == 2
        assert trace.total_executed() == len(trace.records)
