"""Edge-case tests for the functional executor."""

import numpy as np
import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble, run_functional
from repro.simt.executor import ExecutionContext, FunctionalEngine, ThreadBlockState
from repro.simt.memory import KernelParams


def setup_engine(src, block=(8, 1), warp=4, params=None):
    prog = assemble(src)
    ctx = ExecutionContext(
        program=prog,
        launch=LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(*block), warp_size=warp),
        memory=GlobalMemory(1024),
        params=KernelParams(params or {}),
    )
    engine = FunctionalEngine(ctx)
    tb = ThreadBlockState(ctx, 0)
    return prog, engine, tb


class TestOverrides:
    def test_register_override_bypasses_private(self):
        prog, engine, tb = setup_engine("add.u32 $b, $a, 1\nexit")
        warp = tb.warps[0]
        warp.registers.write("a", np.full(4, 10, dtype=np.int64))
        engine.execute_instruction(
            tb, warp, prog.at(0),
            reg_overrides={"a": np.full(4, 99, dtype=np.int64)},
        )
        assert warp.registers.read("b").tolist() == [100] * 4

    def test_pred_override_controls_guard(self):
        prog, engine, tb = setup_engine("@$p0 mov.u32 $b, 7\nexit")
        warp = tb.warps[0]
        engine.execute_instruction(
            tb, warp, prog.at(0),
            pred_overrides={"p0": np.array([True, False, True, False])},
        )
        assert warp.registers.read("b").tolist() == [7, 0, 7, 0]

    def test_overrides_cleared_after_instruction(self):
        prog, engine, tb = setup_engine("add.u32 $b, $a, 1\nadd.u32 $c, $a, 2\nexit")
        warp = tb.warps[0]
        engine.execute_instruction(
            tb, warp, prog.at(0), reg_overrides={"a": np.full(4, 50, dtype=np.int64)}
        )
        engine.execute_instruction(tb, warp, prog.at(8))
        assert warp.registers.read("c").tolist() == [2] * 4  # private a == 0


class TestPartialWarps:
    def test_inactive_tail_lanes_do_not_store(self):
        src = """
        .param out
            shl.u32 $o, %tid.x, 2
            add.u32 $o, $o, %param.out
            st.global.s32 [$o], 7
            exit
        """
        prog = assemble(src)
        mem = GlobalMemory(1024)
        out = mem.alloc(16)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(6), warp_size=4)
        run_functional(prog, launch, mem, params={"out": out})
        got = mem.read_array(out, 8, dtype=np.int64)
        assert got.tolist() == [7] * 6 + [0, 0]


class TestBarrierWithExits:
    def test_barrier_releases_after_partial_exit(self):
        """A warp that exits before the barrier must not deadlock it."""
        src = """
        .param out
            setp.lt.u32 $p0, %tid.x, 4
        @!$p0 bra out
            bar.sync
            shl.u32 $o, %tid.x, 2
            add.u32 $o, $o, %param.out
            st.global.s32 [$o], 1
        out:
            exit
        """
        prog = assemble(src)
        mem = GlobalMemory(1024)
        out = mem.alloc(16)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8), warp_size=4)
        run_functional(prog, launch, mem, params={"out": out})
        got = mem.read_array(out, 8, dtype=np.int64)
        assert got.tolist() == [1, 1, 1, 1, 0, 0, 0, 0]


class TestNumericEdges:
    def test_shift_amounts_clamped(self):
        prog, engine, tb = setup_engine("shl.u32 $b, 1, $a\nexit")
        warp = tb.warps[0]
        warp.registers.write("a", np.array([0, 10, 63, 100], dtype=np.int64))
        engine.execute_instruction(tb, warp, prog.at(0))
        got = warp.registers.read("b")
        assert got[0] == 1 and got[1] == 1024
        # amounts beyond 63 clamp instead of raising.
        assert got[3] == got[2]

    def test_float_to_int_truncates(self):
        prog, engine, tb = setup_engine("cvt.s32 $b, $a\nexit")
        warp = tb.warps[0]
        warp.registers.write("a", np.array([1.9, -1.9, 0.5, 2.0]))
        engine.execute_instruction(tb, warp, prog.at(0))
        assert warp.registers.read("b").tolist() == [1, -1, 0, 2]

    def test_rem_f32(self):
        prog, engine, tb = setup_engine("rem.f32 $c, $a, $b\nexit")
        warp = tb.warps[0]
        warp.registers.write("a", np.array([5.5, 7.0, -3.0, 9.0]))
        warp.registers.write("b", np.array([2.0, 2.0, 2.0, 3.0]))
        engine.execute_instruction(tb, warp, prog.at(0))
        got = warp.registers.read("c")
        assert got[0] == pytest.approx(1.5)
        assert got[1] == pytest.approx(1.0)
