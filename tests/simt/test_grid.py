"""Unit tests for launch geometry and the warp/thread-ID layout."""

import pytest

from repro.simt.grid import Dim3, LaunchConfig, WarpLayout, dim3, tidx_is_tb_redundant


class TestDim3:
    def test_count_and_dimensionality(self):
        assert Dim3(16, 16).count == 256
        assert Dim3(16, 16).dimensionality == 2
        assert Dim3(256).dimensionality == 1
        assert Dim3(4, 4, 2).dimensionality == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            Dim3(0)

    def test_coercion(self):
        assert dim3(8) == Dim3(8)
        assert dim3((4, 2)) == Dim3(4, 2)
        assert dim3(Dim3(3)) == Dim3(3)


class TestLaunchConfig:
    def test_warps_per_block_rounds_up(self):
        cfg = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(48), warp_size=32)
        assert cfg.warps_per_block == 2

    def test_block_index_linearisation(self):
        cfg = LaunchConfig(grid_dim=Dim3(3, 2), block_dim=Dim3(8))
        idx = cfg.block_index(4)
        # x varies fastest: linear 4 = (x=1, y=1).
        assert (idx.x, idx.y, idx.z) == (1, 1, 0)

    def test_total_warps(self):
        cfg = LaunchConfig(grid_dim=Dim3(2, 2), block_dim=Dim3(16, 16))
        assert cfg.total_warps == 4 * 8


class TestWarpLayout:
    def test_x_varies_fastest(self):
        """Section 2: threadIds are assigned to warps by varying x first."""
        cfg = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(4, 4), warp_size=4)
        layout = WarpLayout(cfg)
        # With xdim == warp size, every warp holds one full row.
        for w in range(4):
            assert layout.tid(w, "x").tolist() == [0, 1, 2, 3]
            assert layout.tid(w, "y").tolist() == [w] * 4

    def test_tidx_repeats_when_x_divides_warp(self):
        cfg = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16), warp_size=32)
        layout = WarpLayout(cfg)
        expected = list(range(16)) * 2
        for w in range(8):
            assert layout.tid(w, "x").tolist() == expected

    def test_1d_tidx_is_sequential(self):
        cfg = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(128), warp_size=32)
        layout = WarpLayout(cfg)
        assert layout.tid(2, "x").tolist() == list(range(64, 96))

    def test_partial_warp_mask(self):
        cfg = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(40), warp_size=32)
        layout = WarpLayout(cfg)
        assert layout.active_mask(0).all()
        mask = layout.active_mask(1)
        assert mask[:8].all() and not mask[8:].any()


class TestPromotionCriterion:
    """Section 4.2: 2D TB, x a power of two, x <= warp size."""

    def test_paper_tb_shapes(self):
        assert tidx_is_tb_redundant(Dim3(16, 16))
        assert tidx_is_tb_redundant(Dim3(8, 8))
        assert tidx_is_tb_redundant(Dim3(32, 32))
        assert tidx_is_tb_redundant(Dim3(16, 8))

    def test_1d_fails(self):
        assert not tidx_is_tb_redundant(Dim3(256, 1))
        assert not tidx_is_tb_redundant(Dim3(32, 1))

    def test_non_power_of_two_fails(self):
        assert not tidx_is_tb_redundant(Dim3(48, 4))
        assert not tidx_is_tb_redundant(Dim3(6, 6))

    def test_wider_than_warp_fails(self):
        assert not tidx_is_tb_redundant(Dim3(64, 4))

    def test_warp_size_parameter(self):
        assert tidx_is_tb_redundant(Dim3(4, 2), warp_size=4)
        assert not tidx_is_tb_redundant(Dim3(8, 2), warp_size=4)

    def test_3d_blocks(self):
        assert tidx_is_tb_redundant(Dim3(8, 2, 2))
