"""Unit tests for the functional executor: per-opcode semantics,
predication, divergence, barriers, memory."""

import numpy as np
import pytest

from repro import Dim3, GlobalMemory, LaunchConfig, assemble, run_functional
from repro.simt.executor import ExecutionError


def run(src, block=(8, 1), grid=1, warp=4, params=None, words=4096, tracer=None):
    prog = assemble(src)
    mem = GlobalMemory(words)
    launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(*block), warp_size=warp)
    out = mem.alloc(256, name="out")
    p = {"out": out}
    p.update(params or {})
    engine = run_functional(prog, launch, mem, params=p, tracer=tracer)
    return mem, out, engine


def out_ints(mem, out, n):
    return mem.read_array(out, n, dtype=np.int64).tolist()


STORE_TAIL = """
    shl.u32 $__o, %tid.x, 2
    add.u32 $__o, $__o, %param.out
    st.global.s32 [$__o], $res
    exit
"""
STORE_TAIL_F = STORE_TAIL.replace(".s32", ".f32")


class TestArithmetic:
    def test_add_sub_mul(self):
        mem, out, _ = run(".param out\nmov.u32 $a, 10\nmul.u32 $a, $a, 3\n"
                          "sub.u32 $a, $a, 5\nadd.u32 $res, $a, %tid.x\n" + STORE_TAIL)
        assert out_ints(mem, out, 8) == [25 + i for i in range(8)]

    def test_mad(self):
        mem, out, _ = run(".param out\nmad.u32 $res, %tid.x, 10, 7\n" + STORE_TAIL)
        assert out_ints(mem, out, 8) == [7 + 10 * i for i in range(8)]

    def test_min_max_abs_neg(self):
        mem, out, _ = run(
            ".param out\nsub.s32 $d, %tid.x, 4\nabs.s32 $a, $d\nneg.s32 $n, $d\n"
            "min.s32 $m, $a, $n\nmax.s32 $res, $m, 0\n" + STORE_TAIL
        )
        d = np.arange(8) - 4
        expected = np.maximum(np.minimum(np.abs(d), -d), 0)
        assert out_ints(mem, out, 8) == expected.tolist()

    def test_bitwise_and_shifts(self):
        mem, out, _ = run(
            ".param out\nand.u32 $a, %tid.x, 3\nshl.u32 $b, $a, 4\n"
            "shr.u32 $c, $b, 2\nxor.u32 $d, $c, 1\nor.u32 $res, $d, 8\n" + STORE_TAIL
        )
        a = np.arange(8) & 3
        expected = (((a << 4) >> 2) ^ 1) | 8
        assert out_ints(mem, out, 8) == expected.tolist()

    def test_div_rem_truncation(self):
        mem, out, _ = run(
            ".param out\nadd.s32 $t, %tid.x, 1\ndiv.s32 $q, 17, $t\n"
            "rem.s32 $r, 17, $t\nmad.s32 $res, $q, 100, $r\n" + STORE_TAIL
        )
        got = out_ints(mem, out, 8)
        for i, v in enumerate(got):
            q, r = divmod(17, i + 1)
            assert v == q * 100 + r

    def test_div_by_zero_is_quiet(self):
        mem, out, _ = run(".param out\ndiv.s32 $res, 5, %tid.x\n" + STORE_TAIL)
        assert out_ints(mem, out, 2)[0] == 0  # lane 0 divides by zero -> 0


class TestFloatOps:
    def test_sqrt_rcp(self):
        mem, out, _ = run(
            ".param out\ncvt.f32 $f, %tid.x\nmad.f32 $f, $f, $f, 1.0\n"
            "sqrt.f32 $s, $f\nrcp.f32 $res, $s\n" + STORE_TAIL_F
        )
        got = mem.read_array(out, 8)
        expected = 1.0 / np.sqrt(np.arange(8) ** 2 + 1.0)
        assert np.allclose(got, expected)

    def test_ex2_lg2_sin_cos(self):
        mem, out, _ = run(
            ".param out\ncvt.f32 $f, %tid.x\nmul.f32 $f, $f, 0.25\n"
            "ex2.f32 $a, $f\nlg2.f32 $b, $a\nsin.f32 $s, $b\ncos.f32 $c, $b\n"
            "mul.f32 $s, $s, $s\nmad.f32 $res, $c, $c, $s\n" + STORE_TAIL_F
        )
        got = mem.read_array(out, 8)
        assert np.allclose(got, 1.0)  # sin^2 + cos^2

    def test_selp(self):
        mem, out, _ = run(
            ".param out\nsetp.ge.u32 $p0, %tid.x, 4\n"
            "selp.s32 $res, 111, 222, $p0\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [222] * 4 + [111] * 4


class TestSpecials:
    def test_ids_and_dims(self):
        mem, out, _ = run(
            ".param out\nmul.u32 $a, %ctaid.x, 1000\nmad.u32 $b, %ntid.x, 100, $a\n"
            "add.u32 $res, $b, %laneid\n" + STORE_TAIL, grid=2
        )
        # Both blocks store to the same per-tid slots; block 1 (executed
        # last by the sequential functional runner) wins: 1*1000 + 8*100.
        assert out_ints(mem, out, 4) == [1800 + i for i in range(4)]

    def test_warpid(self):
        mem, out, _ = run(
            ".param out\nmov.u32 $res, %warpid\n"
            "mul.u32 $__o, %tid.x, 4\nadd.u32 $__o, $__o, %param.out\n"
            "st.global.s32 [$__o], $res\nexit\n"
        )
        assert out_ints(mem, out, 8) == [0] * 4 + [1] * 4


class TestPredication:
    def test_guard_masks_writes(self):
        mem, out, _ = run(
            ".param out\nmov.u32 $res, 5\nsetp.lt.u32 $p0, %tid.x, 3\n"
            "@$p0 mov.u32 $res, 9\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [9, 9, 9, 5, 5, 5, 5, 5]

    def test_negated_guard(self):
        mem, out, _ = run(
            ".param out\nmov.u32 $res, 5\nsetp.lt.u32 $p0, %tid.x, 3\n"
            "@!$p0 mov.u32 $res, 1\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [5, 5, 5, 1, 1, 1, 1, 1]


class TestControlFlow:
    def test_uniform_loop(self):
        mem, out, _ = run(
            ".param out\nmov.u32 $res, 0\nmov.u32 $i, 0\n"
            "top:\nadd.u32 $res, $res, 2\nadd.u32 $i, $i, 1\n"
            "setp.lt.u32 $p0, $i, 5\n@$p0 bra top\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [10] * 8

    def test_divergent_branch_reconverges(self):
        mem, out, _ = run(
            ".param out\nmov.u32 $res, 0\nand.u32 $odd, %tid.x, 1\n"
            "setp.eq.u32 $p0, $odd, 1\n@$p0 bra odd\n"
            "add.u32 $res, $res, 100\nbra join\n"
            "odd:\nadd.u32 $res, $res, 200\n"
            "join:\nadd.u32 $res, $res, 7\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [107, 207] * 4

    def test_per_lane_trip_counts(self):
        """Lanes iterate tid.x times — the stack must handle lanes
        leaving the loop at different iterations."""
        mem, out, _ = run(
            ".param out\nmov.u32 $res, 0\nmov.u32 $i, 0\n"
            "top:\nsetp.lt.u32 $p0, $i, %tid.x\n@!$p0 bra done\n"
            "add.u32 $res, $res, 3\nadd.u32 $i, $i, 1\nbra top\n"
            "done:\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [3 * i for i in range(8)]

    def test_barrier_orders_shared_memory(self):
        # Thread i writes s[i]; after the barrier reads s[(i+1)%n].
        mem, out, _ = run(
            ".param out\n.shared 64\nshl.u32 $a, %tid.x, 2\n"
            "mul.u32 $v, %tid.x, 11\nst.shared.s32 [$a], $v\n"
            "bar.sync\n"
            "add.u32 $n, %tid.x, 1\nand.u32 $n, $n, 7\nshl.u32 $b, $n, 2\n"
            "ld.shared.s32 $res, [$b]\n" + STORE_TAIL
        )
        assert out_ints(mem, out, 8) == [11 * ((i + 1) % 8) for i in range(8)]


class TestMemoryOps:
    def test_gather_load(self):
        mem = GlobalMemory(4096)
        table = mem.alloc_array(np.arange(100, 164))
        prog = assemble(
            ".param tab\n.param out\nshl.u32 $a, %tid.x, 2\nadd.u32 $a, $a, %param.tab\n"
            "ld.global.s32 $res, [$a]\nshl.u32 $o, %tid.x, 2\nadd.u32 $o, $o, %param.out\n"
            "st.global.s32 [$o], $res\nexit"
        )
        out = mem.alloc(64)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(8), warp_size=4)
        run_functional(prog, launch, mem, params={"tab": table, "out": out})
        assert mem.read_array(out, 8, dtype=np.int64).tolist() == list(range(100, 108))

    def test_atomic_add_serialises(self):
        mem = GlobalMemory(1024)
        counter = mem.alloc(1)
        prog = assemble(
            ".param ctr\natom.global.add.u32 $old, [%param.ctr], 1\nexit"
        )
        launch = LaunchConfig(grid_dim=Dim3(2), block_dim=Dim3(8), warp_size=4)
        engine = run_functional(prog, launch, mem, params={"ctr": counter})
        assert mem.read_array(counter, 1, dtype=np.int64)[0] == 16
        assert engine.global_communication_seen

    def test_runaway_kernel_detected(self):
        prog = assemble("top:\nbra top\nexit")
        mem = GlobalMemory(64)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(4), warp_size=4)
        with pytest.raises(ExecutionError, match="exceeded"):
            run_functional(prog, launch, mem, max_steps=1000)
