"""Unit tests for the energy model."""

import pytest

from repro.energy import EnergyModel, PASCAL_ENERGY_MODEL
from repro.timing import EnergyEvent, SimStats


def stats_with(events, cycles=100):
    s = SimStats()
    s.cycles = cycles
    for e, n in events.items():
        s.count(e, n)
    return s


class TestAccounting:
    def test_dynamic_energy_is_linear(self):
        s1 = stats_with({EnergyEvent.ALU_OP: 10})
        s2 = stats_with({EnergyEvent.ALU_OP: 20})
        m = PASCAL_ENERGY_MODEL
        assert m.dynamic_energy_pj(s2) == pytest.approx(2 * m.dynamic_energy_pj(s1))

    def test_table2_rf_energies(self):
        m = PASCAL_ENERGY_MODEL
        assert m.event_pj[EnergyEvent.RF_READ] == 14.2
        assert m.event_pj[EnergyEvent.RF_WRITE] == 25.9

    def test_static_energy_scales_with_cycles_and_sms(self):
        m = PASCAL_ENERGY_MODEL
        s = stats_with({}, cycles=1000)
        assert m.static_energy_pj(s, 2) == 2 * m.static_energy_pj(s, 1)

    def test_total_is_sum(self):
        m = PASCAL_ENERGY_MODEL
        s = stats_with({EnergyEvent.DECODE: 5}, cycles=10)
        assert m.total_energy_pj(s, 1) == pytest.approx(
            m.dynamic_energy_pj(s) + m.static_energy_pj(s, 1)
        )

    def test_unknown_events_cost_nothing(self):
        m = EnergyModel(event_pj={})
        s = stats_with({EnergyEvent.ALU_OP: 100})
        assert m.dynamic_energy_pj(s) == 0.0


class TestBreakdown:
    def test_overhead_fraction_isolates_darsie_events(self):
        s = stats_with({
            EnergyEvent.ALU_OP: 1000,
            EnergyEvent.SKIP_TABLE_PROBE: 10,
            EnergyEvent.RENAME_WRITE: 10,
        })
        b = PASCAL_ENERGY_MODEL.breakdown(s, 1)
        assert 0 < b.overhead_fraction < 0.01
        assert b.darsie_overhead_pj > 0
        assert b.total_pj == pytest.approx(b.dynamic_pj + b.static_pj)

    def test_zero_dynamic(self):
        b = PASCAL_ENERGY_MODEL.breakdown(stats_with({}), 1)
        assert b.overhead_fraction == 0.0


class TestOrderingInvariance:
    def test_fewer_events_less_energy(self):
        """The property Figure 11 relies on: removing events can only
        reduce dynamic energy."""
        m = PASCAL_ENERGY_MODEL
        big = stats_with({EnergyEvent.ICACHE_FETCH: 100, EnergyEvent.ALU_OP: 100})
        small = stats_with({EnergyEvent.ICACHE_FETCH: 60, EnergyEvent.ALU_OP: 80})
        assert m.dynamic_energy_pj(small) < m.dynamic_energy_pj(big)
