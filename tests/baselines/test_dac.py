"""Behavioural tests for the DAC-IDEAL baseline."""

import numpy as np

from repro import (
    DacIdealFrontend,
    Dim3,
    GlobalMemory,
    LaunchConfig,
    assemble,
    build_dac_profile,
    run_functional,
    simulate,
    small_config,
)

CFG = small_config(num_sms=1)

AFFINE_1D = """
.param out
    mul.u32 $a, %tid.x, 4
    add.u32 $b, $a, 100
    add.u32 $c, $b, %tid.y
    shl.u32 $o, %tid.x, 2
    add.u32 $o, $o, %param.out
    st.global.s32 [$o], $c
    exit
"""


def run_dac(src, block, grid=1):
    prog = assemble(src)
    launch = LaunchConfig(grid_dim=Dim3(grid), block_dim=Dim3(*block))
    mem = GlobalMemory(1 << 13)
    p = {"out": mem.alloc(256)}
    profile = build_dac_profile(prog, launch, mem.words.copy(), p)
    res = simulate(prog, launch, mem, params=p, config=CFG,
                   frontend_factory=lambda: DacIdealFrontend(profile))
    # functional reference
    mem_f = GlobalMemory(1 << 13)
    pf = {"out": mem_f.alloc(256)}
    run_functional(prog, launch, mem_f, params=pf)
    return res, profile, np.array_equal(mem.words, mem_f.words)


class TestProfile:
    def test_profile_finds_1d_affine(self):
        """DAC removes affine computation even when it is NOT redundant
        (1D tid.x chains) — its key advantage on 1D apps."""
        res, profile, ok = run_dac(AFFINE_1D, (128, 1))
        assert ok
        assert res.stats.instructions_skipped > 0
        assert "affine" in res.stats.skipped_by_class

    def test_profile_excludes_memory_ops(self):
        src = """
        .param tab
        .param out
            mul.u32 $a, %tid.x, 4
            add.u32 $a, $a, %param.tab
            ld.global.s32 $v, [$a]
            shl.u32 $o, %tid.x, 2
            add.u32 $o, $o, %param.out
            st.global.s32 [$o], $v
            exit
        """
        prog = assemble(src)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(16, 16))
        mem = GlobalMemory(1 << 13)
        p = {"tab": mem.alloc_array(np.arange(16)), "out": mem.alloc(256)}
        profile = build_dac_profile(prog, launch, mem.words.copy(), p)
        load_pc = 0x10
        assert not any(pc == load_pc for (_tb, _w, pc, _o) in profile)

    def test_one_warp_executes_per_instance(self):
        prog = assemble(AFFINE_1D)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(128))
        mem = GlobalMemory(1 << 13)
        p = {"out": mem.alloc(256)}
        profile = build_dac_profile(prog, launch, mem.words.copy(), p)
        # 4 warps; each profiled instance is free for exactly 3 of them.
        by_instance = {}
        for (tb, w, pc, occ) in profile:
            by_instance.setdefault((tb, pc, occ), set()).add(w)
        assert by_instance
        assert all(len(ws) == 3 for ws in by_instance.values())

    def test_profiling_does_not_disturb_memory(self):
        prog = assemble(AFFINE_1D)
        launch = LaunchConfig(grid_dim=Dim3(1), block_dim=Dim3(64))
        mem = GlobalMemory(1 << 13)
        p = {"out": mem.alloc(256)}
        snapshot = mem.words.copy()
        build_dac_profile(prog, launch, mem.words.copy(), p)
        assert np.array_equal(mem.words, snapshot)


class TestTiming:
    def test_dac_faster_than_base_on_affine_kernel(self):
        src = AFFINE_1D
        prog = assemble(src)
        launch = LaunchConfig(grid_dim=Dim3(4), block_dim=Dim3(128))
        mem_b = GlobalMemory(1 << 13)
        pb = {"out": mem_b.alloc(256)}
        base = simulate(prog, launch, mem_b, params=pb, config=CFG)
        res, _, ok = run_dac(src, (128, 1), grid=4)
        assert ok
        assert res.cycles <= base.cycles
