"""Loadtest client: percentiles, the report gate, and full runs against
an in-process server (fake pool for speed; the CLI smoke simulates)."""

import json
import os

import pytest

from repro.__main__ import main
from repro.serve.loadgen import LoadtestReport, percentile, run_loadtest
from tests.serve.test_server import FakeRunner


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_single_sample_clamps(self):
        assert percentile([5.0], 0.0) == 5.0
        assert percentile([5.0], 0.99) == 5.0

    def test_nearest_rank_on_known_sample(self):
        values = list(range(100))
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 99
        assert percentile(values, 0.5) == 50
        assert percentile(values, 0.99) == 98


class TestCheckGate:
    def _report(self, **kw):
        base = dict(duration_s=1.0, concurrency=4, mix=["LIB/BASE@tiny"])
        base.update(kw)
        return LoadtestReport(**base)

    def test_passes_on_healthy_run(self):
        report = self._report(
            requests=10, achieved_rps=50.0, status_counts={200: 10},
            server_stats={"hits": 5, "coalesced": 3},
        )
        assert report.check() == []
        assert report.ok

    def test_flags_no_hits_and_no_coalescing(self):
        report = self._report(status_counts={200: 3},
                              server_stats={"hits": 0, "coalesced": 0})
        problems = report.check()
        assert any("no cache hits" in p for p in problems)
        assert any("coalesced" in p for p in problems)
        assert not report.ok

    def test_flags_5xx_and_transport_errors(self):
        report = self._report(
            status_counts={200: 8, 500: 2}, transport_errors=1,
            server_stats={"hits": 5, "coalesced": 1},
        )
        problems = report.check()
        assert report.server_errors == 2
        assert any("5xx" in p for p in problems)
        assert any("transport" in p for p in problems)

    def test_min_rps_is_enforced_only_when_asked(self):
        report = self._report(
            achieved_rps=10.0, status_counts={200: 5},
            server_stats={"hits": 5, "coalesced": 1},
        )
        assert report.check() == []
        assert any("req/s" in p for p in report.check(min_rps=100.0))

    def test_to_dict_round_trips_through_write(self, tmp_path):
        report = self._report(requests=3, achieved_rps=7.5, p99_ms=1.25,
                              status_counts={200: 3})
        path = str(tmp_path / "sub" / "report.json")
        report.write(path)  # creates the parent directory
        with open(path) as fh:
            data = json.load(fh)
        assert data["requests"] == 3
        assert data["latency_ms"]["p99"] == 1.25
        assert data["status_counts"] == {"200": 3}
        assert data["ok"] is True


class TestRunLoadtestSpawned:
    def test_full_run_with_fake_pool(self, tmp_path):
        fake = FakeRunner()
        workdir = str(tmp_path / "wd")
        report = run_loadtest(
            duration_s=0.4, concurrency=4, apps=("LIB",),
            configs=("BASE", "DARSIE"), probe_burst=4,
            workdir=workdir, run_batch=fake,
        )
        assert report.mix == ["LIB/BASE@tiny", "LIB/DARSIE@tiny"]
        assert report.requests > 0
        assert set(report.status_counts) == {200}
        assert report.transport_errors == 0
        assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms
        # the probe burst collapsed onto one simulation...
        assert report.probe["requests"] == 4
        assert report.probe["simulated"] == 1
        assert report.probe["coalesced"] == 3
        # ...and warmup simulated only the one remaining cold config
        assert fake.specs_run == 2
        assert report.server_stats["hits"] > 0
        assert report.check() == [] and report.ok
        # a caller-owned workdir survives the run (CI uploads it on red)
        assert os.path.isdir(workdir)
        assert "[loadtest]" in report.render()

    def test_cli_loadtest_real_simulation(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        code = main([
            "loadtest", "--duration", "0.4", "--concurrency", "4",
            "--apps", "LIB", "--configs", "BASE",
            "--workdir", str(tmp_path / "wd"),
            "--check", "--report", report_path,
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "[loadtest]" in out and "coalesce probe" in out
        with open(report_path) as fh:
            data = json.load(fh)
        assert data["ok"] is True
        assert data["server_stats"]["sim_failures"] == 0
        assert os.path.exists(str(tmp_path / "wd" / "journal.jsonl"))

    def test_cli_rejects_unknown_config_mix(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--configs", "NOPE", "--duration", "0.1"])
