"""Sharded store layout, flat-entry migration, and the serving LRU."""

import json
import os
import pickle

import pytest

from repro.harness import parallel
from repro.harness.parallel import (
    RunSpec,
    cache_key,
    cache_lookup,
    cache_path,
    legacy_cache_path,
)
from repro.harness.runner import RunResult
from repro.serve.store import ResultStore, encode_result
from repro.timing import SimStats, small_config
from repro.timing.gpu import SimulationResult

SPEC = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def make_result(spec=SPEC, cycles=123) -> RunResult:
    sim = SimulationResult(
        frontend_name=spec.config_name,
        cycles=cycles,
        stats=SimStats(cycles=cycles),
        per_sm_stats=[],
        config=small_config(num_sms=1),
    )
    return RunResult(workload=spec.abbr, config_name=spec.config_name,
                     sim=sim, energy_pj=42.0)


def store_entry(spec, cache_dir, path=None, cycles=123) -> str:
    key = cache_key(spec)
    path = path or cache_path(spec, key, cache_dir)
    assert parallel._cache_store(path, key, make_result(spec, cycles))
    return key


class TestShardedLayout:
    def test_cache_path_is_sharded_by_key_prefix(self, cache_dir):
        key = cache_key(SPEC)
        path = cache_path(SPEC, key, cache_dir)
        shard = os.path.basename(os.path.dirname(path))
        assert shard == key[: parallel.CACHE_SHARD_CHARS]
        # the flat path is the same file name, one level up
        assert os.path.basename(legacy_cache_path(SPEC, key, cache_dir)) == \
            os.path.basename(path)

    def test_lookup_hits_sharded_entry(self, cache_dir):
        key = store_entry(SPEC, cache_dir)
        result, status = cache_lookup(SPEC, key, cache_dir)
        assert status == "hit"
        assert result.cycles == 123

    def test_flat_entry_still_found_and_promoted(self, cache_dir):
        """Migration path: entries written by pre-shard code keep
        serving hits and converge to the sharded location on touch."""
        key = cache_key(SPEC)
        flat = legacy_cache_path(SPEC, key, cache_dir)
        store_entry(SPEC, cache_dir, path=flat, cycles=77)

        result, status = cache_lookup(SPEC, key, cache_dir)
        assert status == "hit"
        assert result.cycles == 77
        # promoted: sharded entry exists, flat entry gone
        assert os.path.exists(cache_path(SPEC, key, cache_dir))
        assert not os.path.exists(flat)
        # and the promoted entry itself now serves the hit
        result, status = cache_lookup(SPEC, key, cache_dir)
        assert status == "hit" and result.cycles == 77

    def test_flat_hit_feeds_run_specs(self, cache_dir, monkeypatch):
        """run_specs served from a legacy flat entry counts a cache hit."""
        key = cache_key(SPEC)
        store_entry(SPEC, cache_dir, path=legacy_cache_path(SPEC, key, cache_dir))
        outcomes, stats = parallel.run_specs([SPEC], cache_dir=cache_dir,
                                             use_cache=True)
        assert outcomes[0].cache_hit
        assert stats.cache_hits == 1 and stats.simulated == 0

    def test_corrupt_flat_entry_reported(self, cache_dir):
        key = cache_key(SPEC)
        flat = legacy_cache_path(SPEC, key, cache_dir)
        os.makedirs(cache_dir, exist_ok=True)
        with open(flat, "wb") as fh:
            fh.write(b"\x00not a pickle")
        result, status = cache_lookup(SPEC, key, cache_dir)
        assert result is None and status == "corrupt"

    def test_missing_everywhere_is_a_miss(self, cache_dir):
        result, status = cache_lookup(SPEC, cache_key(SPEC), cache_dir)
        assert result is None and status == "miss"


class TestShardedMaintenance:
    def test_clear_cache_traverses_shards_and_flat(self, cache_dir):
        key = store_entry(SPEC, cache_dir)  # sharded entry
        other = RunSpec(abbr="FWS", config_name="BASE", scale="tiny")
        flat = legacy_cache_path(other, cache_key(other), cache_dir)
        store_entry(other, cache_dir, path=flat)  # legacy flat entry
        leak = os.path.join(cache_dir, key[:2], "x.pkl.tmp.999")
        with open(leak, "wb") as fh:
            fh.write(b"partial")

        assert parallel.clear_cache(cache_dir) == 3
        assert os.listdir(cache_dir) == []  # emptied shard dirs pruned

    def test_reap_stale_tmp_traverses_shards(self, cache_dir):
        key = cache_key(SPEC)
        shard = os.path.join(cache_dir, key[:2])
        os.makedirs(shard, exist_ok=True)
        stale = os.path.join(shard, "a.pkl.tmp.111")
        fresh = os.path.join(shard, "b.pkl.tmp.222")
        flat_stale = os.path.join(cache_dir, "c.pkl.tmp.333")
        for path in (stale, fresh, flat_stale):
            with open(path, "wb") as fh:
                fh.write(b"partial")
        old = os.path.getmtime(stale) - 7200
        os.utime(stale, (old, old))
        os.utime(flat_stale, (old, old))

        assert parallel.reap_stale_tmp(cache_dir) == 2
        assert not os.path.exists(stale)
        assert not os.path.exists(flat_stale)
        assert os.path.exists(fresh)

    def test_clear_cache_counts_nothing_when_empty(self, cache_dir):
        assert parallel.clear_cache(cache_dir) == 0


class TestResultStore:
    def test_miss_then_store_hit_then_memory_hit(self, cache_dir):
        key = store_entry(SPEC, cache_dir)
        store = ResultStore(cache_dir)

        body, source = store.get(SPEC, key)
        assert source == "store"
        payload = json.loads(body.decode())
        assert payload["cycles"] == 123
        assert payload["workload"] == "LIB"

        body2, source2 = store.get(SPEC, key)
        assert source2 == "memory"
        assert body2 == body
        assert store.memory_hits == 1 and store.store_hits == 1

    def test_cold_key_misses(self, cache_dir):
        store = ResultStore(cache_dir)
        body, source = store.get(SPEC, cache_key(SPEC))
        assert body is None and source is None
        assert store.misses == 1

    def test_lru_eviction_bound(self, cache_dir):
        store = ResultStore(cache_dir, memory_entries=2)
        store.put("k1", b"1")
        store.put("k2", b"2")
        store.put("k3", b"3")
        assert len(store) == 2
        assert "k1" not in store._memory  # oldest evicted

    def test_corrupt_disk_entry_counted(self, cache_dir):
        key = cache_key(SPEC)
        path = cache_path(SPEC, key, cache_dir)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage")
        store = ResultStore(cache_dir)
        body, source = store.get(SPEC, key)
        assert body is None
        assert store.corrupt_entries == 1

    def test_encode_result_fallback_never_raises(self):
        body = encode_result(object())
        assert b"repr" in body

    def test_wrong_key_entry_is_a_miss(self, cache_dir):
        key = cache_key(SPEC)
        path = cache_path(SPEC, key, cache_dir)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump({"key": "foreign", "result": "bogus"}, fh)
        store = ResultStore(cache_dir)
        body, source = store.get(SPEC, key)
        assert body is None and source is None
