"""The asyncio sweep service: validation, coalescing, backpressure,
disconnect survival, hit paths, failure reporting, graceful shutdown.

Every test runs a real :class:`SweepServer` on an ephemeral port inside
``asyncio.run`` and speaks real HTTP to it; the simulation pool is
replaced by a deterministic in-test batch runner (a ``threading.Event``
gates its completion, since it runs on the pump's worker thread).  One
end-to-end test at the bottom exercises the real ``run_specs`` path.
"""

import asyncio
import json
import os
import threading
import time
from collections import Counter

import pytest

from repro.config import ExecPolicy
from repro.harness import parallel
from repro.harness.parallel import RunOutcome, RunSpec, SweepStats, cache_key, cache_path
from repro.harness.runner import RunResult
from repro.serve.loadgen import build_request
from repro.serve.server import SweepServer
from repro.timing import SimStats, small_config
from repro.timing.gpu import SimulationResult


def make_result(spec, cycles=123) -> RunResult:
    sim = SimulationResult(
        frontend_name=spec.config_name,
        cycles=cycles,
        stats=SimStats(cycles=cycles),
        per_sm_stats=[],
        config=small_config(num_sms=1),
    )
    return RunResult(workload=spec.abbr, config_name=spec.config_name,
                     sim=sim, energy_pj=42.0)


class FakeRunner:
    """Stands in for run_specs: records batches, optionally blocks on a
    threading.Event (it runs on the pump's executor thread) or fails."""

    def __init__(self, release=None, fail=False):
        self.calls = []
        self.release = release
        self.fail = fail

    @property
    def specs_run(self):
        return sum(len(batch) for batch in self.calls)

    def __call__(self, specs):
        self.calls.append(list(specs))
        if self.release is not None:
            assert self.release.wait(timeout=10), "test never released the runner"
        outcomes = []
        for spec in specs:
            if self.fail:
                outcomes.append(RunOutcome(
                    spec=spec, result=None, error="boom\ndetail",
                    error_type="RuntimeError",
                ))
            else:
                outcomes.append(RunOutcome(spec=spec, result=make_result(spec)))
        stats = SweepStats(runs=len(specs),
                           simulated=0 if self.fail else len(specs),
                           failures=len(specs) if self.fail else 0)
        return outcomes, stats


def body(abbr="LIB", variant="BASE", scale="tiny", **extra) -> bytes:
    data = {"abbr": abbr, "variant": variant, "scale": scale}
    data.update(extra)
    return json.dumps(data).encode()


async def request(port, method, path, payload=b"", keep_reader=False):
    """One HTTP exchange; returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(build_request("127.0.0.1", method, path, payload))
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    raw = await reader.readexactly(length) if length else b""
    writer.close()
    try:
        parsed = json.loads(raw.decode()) if raw else None
    except ValueError:
        parsed = raw
    return status, headers, parsed


async def wait_until(predicate, timeout=5.0, message="condition not met"):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise AssertionError(message)


def serve_test(test_coro, **server_kwargs):
    """Boot a server on an ephemeral port, run the coroutine, drain."""
    async def main():
        server = SweepServer(port=0, **server_kwargs)
        await server.start()
        try:
            await test_coro(server)
        finally:
            await asyncio.wait_for(server.stop(), timeout=15)
    asyncio.run(main())


class TestValidation:
    def test_bad_requests_are_400_with_strict_errors(self, tmp_path):
        fake = FakeRunner()

        async def scenario(server):
            # malformed JSON
            status, _, reply = await request(server.port, "POST", "/run", b"{nope")
            assert status == 400 and "not valid JSON" in reply["error"]
            # unknown top-level key: the strict from_dict error verbatim
            status, _, reply = await request(
                server.port, "POST", "/run", body(bogus=1))
            assert status == 400
            assert "unknown key" in reply["error"] and "bogus" in reply["error"]
            # unknown nested key
            status, _, reply = await request(
                server.port, "POST", "/run", body(gpu={"no_such_knob": 3}))
            assert status == 400 and "no_such_knob" in reply["error"]
            # unknown variant / workload / scale
            status, _, reply = await request(
                server.port, "POST", "/run", body(variant="NOPE"))
            assert status == 400 and "unknown variant" in reply["error"]
            status, _, reply = await request(
                server.port, "POST", "/run", body(abbr="NOPE"))
            assert status == 400 and "unknown workload" in reply["error"]
            status, _, reply = await request(
                server.port, "POST", "/run", body(scale="huge"))
            assert status == 400 and "unknown scale" in reply["error"]
            # wrong method / path
            status, _, _ = await request(server.port, "GET", "/run")
            assert status == 405
            status, _, _ = await request(server.port, "GET", "/nothing")
            assert status == 404
            assert server.stats.bad_requests == 6
            assert fake.calls == []  # nothing ever reached the pool

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))

    def test_registered_variants_are_all_servable(self, tmp_path):
        """Any registry variant — including extension variants like
        DUAL-ISSUE — passes validation and reaches the pool."""
        fake = FakeRunner()

        async def scenario(server):
            status, _, reply = await request(
                server.port, "POST", "/run", body(variant="DUAL-ISSUE"))
            assert status == 200 and reply["source"] == "simulated"
            assert fake.specs_run == 1

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))


class TestCoalescing:
    def test_n_identical_requests_one_simulation(self, tmp_path):
        release = threading.Event()
        fake = FakeRunner(release=release)

        async def scenario(server):
            tasks = [
                asyncio.ensure_future(request(server.port, "POST", "/run", body()))
                for _ in range(6)
            ]
            try:
                await wait_until(
                    lambda: server.stats.coalesced == 5,
                    message="5 of 6 identical requests should coalesce",
                )
                assert server.stats.misses == 1
            finally:
                release.set()
            replies = await asyncio.gather(*tasks)
            assert all(status == 200 for status, _, _ in replies)
            sources = Counter(reply["source"] for _, _, reply in replies)
            assert sources == {"simulated": 1, "coalesced": 5}
            keys = {reply["key"] for _, _, reply in replies}
            assert len(keys) == 1
            assert fake.specs_run == 1  # exactly one simulation ran
            status, _, stats = await request(server.port, "GET", "/stats")
            assert status == 200
            assert stats["coalesced"] == 5 and stats["misses"] == 1

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))

    def test_distinct_configs_do_not_coalesce(self, tmp_path):
        fake = FakeRunner()

        async def scenario(server):
            await request(server.port, "POST", "/run", body(variant="BASE"))
            await request(server.port, "POST", "/run", body(variant="DARSIE"))
            assert server.stats.coalesced == 0
            assert fake.specs_run == 2

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))


class TestBackpressure:
    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        release = threading.Event()
        fake = FakeRunner(release=release)

        async def scenario(server):
            first = asyncio.ensure_future(
                request(server.port, "POST", "/run", body(variant="BASE")))
            try:
                await wait_until(lambda: server.stats.misses == 1)
                # the queue (depth 1, limit 1) is full: a *distinct*
                # config must be refused, politely
                status, headers, reply = await request(
                    server.port, "POST", "/run", body(variant="DARSIE"))
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert reply["queue_limit"] == 1
                assert server.stats.rejected == 1
                # ...but a *duplicate* coalesces for free, no 429
                dup = asyncio.ensure_future(
                    request(server.port, "POST", "/run", body(variant="BASE")))
                await wait_until(lambda: server.stats.coalesced == 1)
            finally:
                release.set()
            status, _, _ = await first
            assert status == 200
            status, _, _ = await dup
            assert status == 200

        serve_test(scenario, run_batch=fake, queue_limit=1,
                   cache_dir=str(tmp_path / "c"))


class TestDisconnect:
    def test_client_disconnect_does_not_cancel_shared_simulation(self, tmp_path):
        release = threading.Event()
        fake = FakeRunner(release=release)

        async def scenario(server):
            # first client fires the request and slams the connection
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            writer.write(build_request("127.0.0.1", "POST", "/run", body()))
            await writer.drain()
            await wait_until(lambda: server.stats.misses == 1)
            writer.close()  # gone before any response

            # second client wants the same config mid-flight
            second = asyncio.ensure_future(
                request(server.port, "POST", "/run", body()))
            try:
                await wait_until(lambda: server.stats.coalesced == 1)
            finally:
                release.set()
            status, _, reply = await second
            assert status == 200
            assert reply["source"] == "coalesced"
            assert reply["result"]["cycles"] == 123
            assert fake.specs_run == 1  # the shared simulation survived

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))


class TestHitPaths:
    def test_simulated_then_memory_hit(self, tmp_path):
        fake = FakeRunner()

        async def scenario(server):
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 200 and reply["source"] == "simulated"
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 200 and reply["source"] == "memory"
            assert fake.specs_run == 1
            assert server.stats.hits == 1 and server.stats.hit_rate == 0.5

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))

    def test_disk_store_hit_without_any_simulation(self, tmp_path):
        """A warm sharded store serves a fresh server's first request."""
        cache_dir = str(tmp_path / "c")
        spec = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
        key = cache_key(spec)
        assert parallel._cache_store(
            cache_path(spec, key, cache_dir), key, make_result(spec, cycles=999))
        fake = FakeRunner()

        async def scenario(server):
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 200
            assert reply["source"] == "store"
            assert reply["key"] == key
            assert reply["result"]["cycles"] == 999
            assert fake.calls == []

        serve_test(scenario, run_batch=fake, cache_dir=cache_dir)

    def test_policy_is_execution_only_not_identity(self, tmp_path):
        """Per-request ExecPolicy reaches the spec but never the key."""
        fake = FakeRunner()

        async def scenario(server):
            await request(server.port, "POST", "/run",
                          body(policy={"max_retries": 2, "timeout_s": 9.0}))
            spec = fake.calls[0][0]
            assert spec.policy == ExecPolicy(max_retries=2, timeout_s=9.0)
            # same run under a different policy: served from memory, no
            # second simulation — policy is excluded from the identity
            status, _, reply = await request(
                server.port, "POST", "/run", body(policy={"max_retries": 7}))
            assert status == 200 and reply["source"] == "memory"
            assert fake.specs_run == 1

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))


class TestFailures:
    def test_sim_failure_is_500_and_not_cached(self, tmp_path):
        fake = FakeRunner(fail=True)

        async def scenario(server):
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 500
            assert reply["error_type"] == "RuntimeError"
            assert reply["error"] == "boom"  # first line only
            assert server.stats.sim_failures == 1
            # a failure must not poison the store: next request retries
            status, _, _ = await request(server.port, "POST", "/run", body())
            assert status == 500
            assert fake.specs_run == 2

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))


class TestLifecycle:
    def test_stats_and_healthz_shape(self, tmp_path):
        fake = FakeRunner()

        async def scenario(server):
            await request(server.port, "POST", "/run", body())
            status, _, stats = await request(server.port, "GET", "/stats")
            assert status == 200
            for field in ("requests", "hits", "misses", "coalesced", "rejected",
                          "hit_rate", "queue_depth", "queue_limit", "queue_peak",
                          "sweep", "store", "uptime_s"):
                assert field in stats, field
            assert stats["sweep"]["runs"] == 1
            assert "per_run" not in stats["sweep"]  # kept bounded
            status, _, health = await request(server.port, "GET", "/healthz")
            assert status == 200 and health["ok"] and not health["draining"]

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))

    def test_draining_refuses_new_simulations(self, tmp_path):
        fake = FakeRunner()

        async def scenario(server):
            server._draining = True  # listener still up: drain window
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 503 and "draining" in reply["error"]
            server._draining = False

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))

    def test_graceful_stop_drains_inflight_work(self, tmp_path):
        release = threading.Event()
        fake = FakeRunner(release=release)

        async def main():
            server = SweepServer(port=0, run_batch=fake,
                                 cache_dir=str(tmp_path / "c"))
            await server.start()
            pending = asyncio.ensure_future(
                request(server.port, "POST", "/run", body()))
            await wait_until(lambda: server.stats.misses == 1)
            stopper = asyncio.ensure_future(server.stop())
            await asyncio.sleep(0.05)
            assert not stopper.done()  # stop waits for the drain
            release.set()
            await asyncio.wait_for(stopper, timeout=15)
            status, _, reply = await asyncio.wait_for(pending, timeout=5)
            assert status == 200 and reply["source"] == "simulated"

        asyncio.run(main())


class TestEndToEnd:
    def test_real_simulation_store_and_journal(self, tmp_path):
        """Default pool path: a real tiny run lands in the sharded store
        and the journal, then serves hits."""
        cache_dir = str(tmp_path / "cache")
        journal = str(tmp_path / "journal.jsonl")

        async def scenario(server):
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 200 and reply["source"] == "simulated"
            cycles = reply["result"]["cycles"]
            assert cycles > 0
            status, _, again = await request(server.port, "POST", "/run", body())
            assert again["source"] == "memory"
            assert again["result"]["cycles"] == cycles

        serve_test(scenario, cache_dir=cache_dir, journal=journal, jobs=1)

        spec = RunSpec(abbr="LIB", config_name="BASE", scale="tiny")
        key = cache_key(spec)
        assert os.path.exists(cache_path(spec, key, cache_dir))  # sharded entry
        entries = parallel.load_journal(journal)
        assert entries[key]["ok"] is True


class TestForwardProgressHealth:
    """`/healthz` degrades when work is pending and the pump is wedged."""

    def test_stalled_pump_reports_degraded_then_recovers(self, tmp_path):
        release = threading.Event()
        fake = FakeRunner(release=release)

        async def scenario(server):
            status, _, health = await request(server.port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"

            pending = asyncio.ensure_future(
                request(server.port, "POST", "/run", body()))
            await wait_until(lambda: server.stats.misses == 1)
            # the worker is blocked on `release`: no batch can complete
            await asyncio.sleep(0.15)
            status, _, health = await request(server.port, "GET", "/healthz")
            assert status == 200  # alive-but-degraded: the body carries it
            assert health["status"] == "degraded"
            assert "no pump progress" in health["reason"]
            assert "1 config(s) pending" in health["reason"]
            status, _, stats = await request(server.port, "GET", "/stats")
            assert stats["stalled"] is True

            release.set()
            status, _, reply = await asyncio.wait_for(pending, timeout=10)
            assert status == 200
            status, _, health = await request(server.port, "GET", "/healthz")
            assert health["status"] == "ok" and "reason" not in health
            status, _, stats = await request(server.port, "GET", "/stats")
            assert stats["stalled"] is False

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"),
                   stall_threshold_s=0.05)

    def test_idle_server_never_degrades(self, tmp_path):
        fake = FakeRunner()

        async def scenario(server):
            await asyncio.sleep(0.15)  # well past the threshold, no work
            status, _, health = await request(server.port, "GET", "/healthz")
            assert health["status"] == "ok"

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"),
                   stall_threshold_s=0.05)

    def test_deadlock_and_checkpoint_counters_in_stats(self, tmp_path):
        class DeadlockRunner(FakeRunner):
            def __call__(self, specs):
                self.calls.append(list(specs))
                outcomes = [RunOutcome(
                    spec=s, result=None,
                    error="exceeded max_cycles=50",
                    error_type="DeadlockError",
                ) for s in specs]
                stats = SweepStats(runs=len(specs), failures=len(specs),
                                   checkpoints_written=3, checkpoint_resumes=1)
                return outcomes, stats

        fake = DeadlockRunner()

        async def scenario(server):
            status, _, reply = await request(server.port, "POST", "/run", body())
            assert status == 500 and reply["error_type"] == "DeadlockError"
            status, _, stats = await request(server.port, "GET", "/stats")
            assert stats["deadlocks"] == 1
            assert stats["checkpoints_written"] == 3
            assert stats["checkpoint_resumes"] == 1
            assert stats["sweep"]["checkpoints_written"] == 3

        serve_test(scenario, run_batch=fake, cache_dir=str(tmp_path / "c"))
